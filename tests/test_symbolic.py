"""Symbolic (MSO) engine tests — the slower end-to-end verdicts.

These exercise the paper's actual pipeline (encoding → automata →
emptiness) over ALL trees.  Each takes seconds-to-tens-of-seconds in pure
Python; the differential comparison against the bounded engine is the key
assertion.
"""

import pytest

from repro.casestudies import cycletree, sizecount
from repro.core.symbolic import check_data_race_mso
from repro.solver.solver import MSOSolver


@pytest.mark.slow
class TestSymbolicRace:
    def test_sizecount_race_free_all_trees(self):
        import time

        v = check_data_race_mso(
            sizecount.parallel_program(),
            solver=MSOSolver(product_budget=30_000),
            deadline=time.perf_counter() + 60,
        )
        if v.status != "decided":
            pytest.skip(
                "sound encoder exceeds the symbolic budget on this host "
                "(see EXPERIMENTS.md); verdict covered by the bounded engine"
            )
        assert v.holds

    def test_cycletree_race_found_with_witness(self):
        import time

        v = check_data_race_mso(
            cycletree.parallel_program(),
            deadline=time.perf_counter() + 60,
        )
        if v.status != "decided":
            pytest.skip("symbolic engine exceeded its budget on this host")
        assert v.found
        assert v.witness is not None
        # Replay the symbolic counterexample on the interpreter.
        from repro.core.witness import replay_race

        out = replay_race(
            cycletree.parallel_program(), v.witness.tree, cycletree.FIELDS
        )
        # A single-node witness may hide the race behind equal initial
        # values; seed fields to expose it.
        assert out.confirmed or v.witness.tree.size <= 1


class TestBudgets:
    def test_product_budget_raises_cleanly(self):
        from repro.automata.determinize import StateBudgetExceeded
        from repro.core.symbolic import check_conflict_mso

        v = check_conflict_mso(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
            solver=MSOSolver(product_budget=5),
        )
        assert v.status == "budget"

    def test_auto_engine_falls_back(self):
        from repro import check_equivalence

        r = check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
            engine="auto",
            mso_deadline_s=10,
        )
        assert r.verdict == "equivalent"
        assert r.engine in ("mso", "mso+bounded")
