"""Tests for the command-line interface."""

import json

import pytest

from repro import cli
from repro.cli import main

SIZECOUNT = """
Odd(n) {
  if (n == nil) { return 0 }
  else { ls = Even(n.l); rs = Even(n.r); return ls + rs + 1 }
}
Even(n) {
  if (n == nil) { return 0 }
  else { ls = Odd(n.l); rs = Odd(n.r); return ls + rs }
}
Main(n) {
  { o = Odd(n) || e = Even(n) };
  return o, e
}
"""

RACY = """
A(n) {
  if (n == nil) { return 0 }
  else { n.v = 1; return 0 }
}
Main(n) {
  { a = A(n) || b = A(n) };
  return 0
}
"""


@pytest.fixture
def sizecount_file(tmp_path):
    f = tmp_path / "sizecount.retreet"
    f.write_text(SIZECOUNT)
    return str(f)


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.retreet"
    f.write_text(RACY)
    return str(f)


class TestRun:
    def test_run_full_tree(self, sizecount_file, capsys):
        assert main(["run", sizecount_file, "--tree", "full:3"]) == 0
        out = capsys.readouterr().out
        assert "returns: (5, 2)" in out

    def test_run_random_tree(self, sizecount_file, capsys):
        assert main(["run", sizecount_file, "--tree", "random:6:3"]) == 0
        assert "returns:" in capsys.readouterr().out


class TestBlocks:
    def test_blocks_table(self, sizecount_file, capsys):
        assert main(["blocks", sizecount_file]) == 0
        out = capsys.readouterr().out
        assert "s10" in out and "c1" in out


class TestCheckRace:
    def test_race_free_exit_zero(self, sizecount_file, capsys):
        rc = main(["check-race", sizecount_file, "--engine", "bounded"])
        assert rc == 0
        assert "race-free" in capsys.readouterr().out

    def test_race_exit_one(self, racy_file, capsys):
        rc = main(["check-race", racy_file, "--engine", "bounded"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "race" in out


class TestCheckFusion:
    def test_identity_fusion(self, sizecount_file, tmp_path, capsys):
        other = tmp_path / "same.retreet"
        other.write_text(SIZECOUNT)
        rc = main(
            ["check-fusion", sizecount_file, str(other), "--engine", "bounded"]
        )
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out


class TestResourceFlags:
    def test_unknown_verdict_exits_three(self, sizecount_file, capsys):
        rc = main(
            ["check-race", sizecount_file, "--engine", "mso",
             "--deadline", "0.05"]
        )
        assert rc == 3
        captured = capsys.readouterr()
        assert "unknown" in captured.out
        assert "resource limits" in captured.err
        assert "attempt mso: deadline" in captured.err

    def test_flags_forwarded(self, sizecount_file, capsys):
        rc = main(
            ["check-race", sizecount_file, "--engine", "bounded",
             "--max-internal", "2", "--det-budget", "1000"]
        )
        assert rc == 0
        assert "race-free" in capsys.readouterr().out

    def test_fusion_accepts_flags(self, sizecount_file, tmp_path, capsys):
        other = tmp_path / "same.retreet"
        other.write_text(SIZECOUNT)
        rc = main(
            ["check-fusion", sizecount_file, str(other),
             "--engine", "bounded", "--max-internal", "2"]
        )
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out


class TestUniformExitCodes:
    def test_missing_file_exits_two(self, capsys):
        rc = main(["check-race", "/nonexistent/prog.retreet",
                   "--engine", "bounded"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.retreet"
        bad.write_text("Main(n) { this is not a program")
        rc = main(["check-race", str(bad), "--engine", "bounded"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_broken_manifest_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "m.json"
        bad.write_text("{")
        rc = main(["batch", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_interrupt_exits_130(self, monkeypatch, capsys):
        def boom(_argv=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", boom)
        rc = main(["check-race", "whatever"])
        assert rc == 130
        assert "interrupted (partial journal preserved)" in (
            capsys.readouterr().err
        )


class TestIsolationFlag:
    def test_check_race_process_isolation(self, racy_file, capsys):
        rc = main(["check-race", racy_file, "--engine", "bounded",
                   "--isolation", "process", "--wall-s", "60"])
        assert rc == 1
        assert "race" in capsys.readouterr().out


class TestBatch:
    def test_batch_run_and_resume(self, racy_file, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "defaults": {"options": {"engine": "bounded", "max_internal": 2},
                         "limits": {"wall_s": 60.0}},
            "tasks": [{"name": "racy", "kind": "check-race",
                       "file": "racy.retreet"}],
        }))
        (tmp_path / "racy.retreet").write_text(RACY)
        run_dir = tmp_path / "run"
        rc = main(["batch", str(manifest), "--run-dir", str(run_dir),
                   "--quiet"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "racy: race" in out and "results:" in out
        assert (run_dir / "results.json").exists()

        rc2 = main(["batch", str(manifest), "--resume", str(run_dir),
                    "--quiet"])
        assert rc2 == 1
        assert "1 resumed" in capsys.readouterr().out
