"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SIZECOUNT = """
Odd(n) {
  if (n == nil) { return 0 }
  else { ls = Even(n.l); rs = Even(n.r); return ls + rs + 1 }
}
Even(n) {
  if (n == nil) { return 0 }
  else { ls = Odd(n.l); rs = Odd(n.r); return ls + rs }
}
Main(n) {
  { o = Odd(n) || e = Even(n) };
  return o, e
}
"""

RACY = """
A(n) {
  if (n == nil) { return 0 }
  else { n.v = 1; return 0 }
}
Main(n) {
  { a = A(n) || b = A(n) };
  return 0
}
"""


@pytest.fixture
def sizecount_file(tmp_path):
    f = tmp_path / "sizecount.retreet"
    f.write_text(SIZECOUNT)
    return str(f)


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.retreet"
    f.write_text(RACY)
    return str(f)


class TestRun:
    def test_run_full_tree(self, sizecount_file, capsys):
        assert main(["run", sizecount_file, "--tree", "full:3"]) == 0
        out = capsys.readouterr().out
        assert "returns: (5, 2)" in out

    def test_run_random_tree(self, sizecount_file, capsys):
        assert main(["run", sizecount_file, "--tree", "random:6:3"]) == 0
        assert "returns:" in capsys.readouterr().out


class TestBlocks:
    def test_blocks_table(self, sizecount_file, capsys):
        assert main(["blocks", sizecount_file]) == 0
        out = capsys.readouterr().out
        assert "s10" in out and "c1" in out


class TestCheckRace:
    def test_race_free_exit_zero(self, sizecount_file, capsys):
        rc = main(["check-race", sizecount_file, "--engine", "bounded"])
        assert rc == 0
        assert "race-free" in capsys.readouterr().out

    def test_race_exit_one(self, racy_file, capsys):
        rc = main(["check-race", racy_file, "--engine", "bounded"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "race" in out


class TestCheckFusion:
    def test_identity_fusion(self, sizecount_file, tmp_path, capsys):
        other = tmp_path / "same.retreet"
        other.write_text(SIZECOUNT)
        rc = main(
            ["check-fusion", sizecount_file, str(other), "--engine", "bounded"]
        )
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out


class TestResourceFlags:
    def test_unknown_verdict_exits_three(self, sizecount_file, capsys):
        rc = main(
            ["check-race", sizecount_file, "--engine", "mso",
             "--deadline", "0.05"]
        )
        assert rc == 3
        captured = capsys.readouterr()
        assert "unknown" in captured.out
        assert "resource limits" in captured.err
        assert "attempt mso: deadline" in captured.err

    def test_flags_forwarded(self, sizecount_file, capsys):
        rc = main(
            ["check-race", sizecount_file, "--engine", "bounded",
             "--max-internal", "2", "--det-budget", "1000"]
        )
        assert rc == 0
        assert "race-free" in capsys.readouterr().out

    def test_fusion_accepts_flags(self, sizecount_file, tmp_path, capsys):
        other = tmp_path / "same.retreet"
        other.write_text(SIZECOUNT)
        rc = main(
            ["check-fusion", sizecount_file, str(other),
             "--engine", "bounded", "--max-internal", "2"]
        )
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out
