"""Differential tests: int-table BDD core vs the tuple-node reference.

The flat int-table manager in :mod:`repro.bdd.bdd` must be
observation-equivalent to the pre-refactor tuple-per-node implementation
preserved verbatim in :mod:`repro.bdd.reference`: identical node handles
in identical order (hash-consing allocates by first construction, and the
apply algorithms recurse the same way), identical truth tables, and an
identical ``cache_stats()`` key shape.  Guard handles feed automata
structure and ultimately the compiler's ``structural_key`` memo, so
handle-level agreement is the strongest observable.

Two layers:

* a seeded op-stream driver plays 200+ random operation sequences against
  both managers in lockstep (the micro level);
* generated Retreet programs' encoder formulas compile through two full
  pipelines, one per manager, and the resulting automata must agree state
  for state and guard for guard (the macro level, via :mod:`repro.gen`).
"""

import itertools
import random

import pytest

from repro.bdd import BDDManager
from repro.bdd.reference import ReferenceBDDManager

N_VARS = 6
SEEDS = 208
CHUNK = 26


def _truth_table(mgr, u):
    rows = []
    for bits in itertools.product((False, True), repeat=N_VARS):
        rows.append(mgr.evaluate(u, lambda lvl: bits[lvl]))
    return tuple(rows)


def _drive(rng, n_ops=60):
    """One op stream applied to both managers in lockstep.

    Returns the two managers for post-run shape checks."""
    a = BDDManager()
    b = ReferenceBDDManager()
    pool_a = [a.true, a.false]
    pool_b = [b.true, b.false]
    for lvl in range(N_VARS):
        pool_a += [a.var(lvl), a.nvar(lvl)]
        pool_b += [b.var(lvl), b.nvar(lvl)]
    assert pool_a == pool_b

    for step in range(n_ops):
        op = rng.randrange(9)
        i = rng.randrange(len(pool_a))
        j = rng.randrange(len(pool_a))
        k = rng.randrange(len(pool_a))
        if op == 0:
            ua, ub = a.apply_and(pool_a[i], pool_a[j]), b.apply_and(pool_b[i], pool_b[j])
        elif op == 1:
            ua, ub = a.apply_or(pool_a[i], pool_a[j]), b.apply_or(pool_b[i], pool_b[j])
        elif op == 2:
            ua, ub = a.apply_not(pool_a[i]), b.apply_not(pool_b[i])
        elif op == 3:
            ua, ub = a.apply_diff(pool_a[i], pool_a[j]), b.apply_diff(pool_b[i], pool_b[j])
        elif op == 4:
            ua = a.ite(pool_a[i], pool_a[j], pool_a[k])
            ub = b.ite(pool_b[i], pool_b[j], pool_b[k])
        elif op == 5:
            levels = frozenset(
                rng.sample(range(N_VARS), rng.randint(1, N_VARS))
            )
            ua, ub = a.exists(pool_a[i], levels), b.exists(pool_b[i], levels)
        elif op == 6:
            lvl, val = rng.randrange(N_VARS), bool(rng.randrange(2))
            ua = a.restrict(pool_a[i], lvl, val)
            ub = b.restrict(pool_b[i], lvl, val)
        elif op == 7:
            idxs = [rng.randrange(len(pool_a)) for _ in range(rng.randint(0, 4))]
            ua = a.conj([pool_a[x] for x in idxs])
            ub = b.conj([pool_b[x] for x in idxs])
        else:
            idxs = [rng.randrange(len(pool_a)) for _ in range(rng.randint(0, 4))]
            ua = a.disj([pool_a[x] for x in idxs])
            ub = b.disj([pool_b[x] for x in idxs])
        assert ua == ub, f"handle divergence at step {step} (op {op})"
        pool_a.append(ua)
        pool_b.append(ub)
        if step % 7 == 0:
            assert _truth_table(a, ua) == _truth_table(b, ub)
            assert a.support(ua) == b.support(ub)
    return a, b, pool_a, pool_b


@pytest.mark.parametrize("base", range(0, SEEDS, CHUNK))
def test_op_streams_agree(base):
    """208 seeded builds: handles, semantics, and cache shape all match."""
    for seed in range(base, base + CHUNK):
        rng = random.Random(seed)
        a, b, pool_a, pool_b = _drive(rng)
        assert a.size() == b.size()
        sa, sb = a.cache_stats(), b.cache_stats()
        assert set(sa) == set(sb), "cache_stats key shape diverged"
        assert sa["nodes"] == sb["nodes"]
        # Spot-check final pool semantics end to end.
        for ua, ub in zip(pool_a[-5:], pool_b[-5:]):
            assert _truth_table(a, ua) == _truth_table(b, ub)


def test_cube_enumeration_agrees():
    """pick_cube/iter_cubes walk the same shared structure."""
    rng = random.Random(1234)
    a, b, pool_a, pool_b = _drive(rng, n_ops=40)
    for ua, ub in zip(pool_a, pool_b):
        assert a.pick_cube(ua) == b.pick_cube(ub)
        assert list(a.iter_cubes(ua)) == list(b.iter_cubes(ub))


def test_node_accessors_agree():
    rng = random.Random(99)
    a, b, pool_a, pool_b = _drive(rng, n_ops=30)
    for ua, ub in zip(pool_a, pool_b):
        if ua in (a.true, a.false):
            continue
        assert a.level(ua) == b.level(ub)
        assert a.node(ua) == b.node(ub)


# ---------------------------------------------------------------------------
# Macro level: full compile pipelines over generated programs.
# ---------------------------------------------------------------------------


def _compile_with(manager_cls, src):
    from repro.automata.tta import TrackRegistry
    from repro.core.configurations import ProgramModel
    from repro.core.encode import Encoder
    from repro.lang import parse_program
    from repro.mso import syntax as S
    from repro.mso.compile import Compiler

    program = parse_program(src, name="diff")
    model = ProgramModel(program)
    enc = Encoder(model, "P")
    registry = TrackRegistry(manager_cls())
    families = [enc.tracks(1), enc.tracks(2)]
    enc.preregister(registry, families)
    comp = Compiler(registry)
    parts = enc.config_core_parts(families[0])
    auto = comp.compile(S.And(tuple(parts)) if len(parts) > 1 else parts[0])
    return registry.manager, comp, auto


@pytest.mark.parametrize("seed", [0, 1, 2, 5, 11])
def test_generated_program_pipelines_agree(seed):
    """Same program, two managers: identical automata, node for node."""
    from repro.gen import GenConfig, RandomSource, gen_program_source

    src = gen_program_source(RandomSource(seed), GenConfig())
    mgr_a, comp_a, auto_a = _compile_with(BDDManager, src)
    mgr_b, comp_b, auto_b = _compile_with(ReferenceBDDManager, src)

    assert auto_a.n_states == auto_b.n_states
    assert auto_a.accepting == auto_b.accepting
    assert auto_a.leaf == auto_b.leaf
    assert auto_a.delta == auto_b.delta  # guard handles are ints in both
    assert mgr_a.size() == mgr_b.size()
    assert set(comp_a._cache) == set(comp_b._cache), (
        "structural_key memo population diverged"
    )
