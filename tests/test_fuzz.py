"""Property-based fuzzing over randomly generated Retreet programs.

A hypothesis strategy builds random *valid* programs (descending recursion,
guarded dereferences, consistent arities); every pipeline stage must handle
them: print/parse round-trip, validation, block relations, interpretation,
configuration enumeration, and the bounded race checker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounded import check_data_race_bounded, default_scope
from repro.core.configurations import ProgramModel, enumerate_configurations
from repro.interp import run
from repro.lang import BlockTable, parse_program, program_source, validate
from repro.trees.generators import all_shapes, random_tree

FIELDS = ["a", "b", "c"]
FUNCS = ["F0", "F1", "F2"]


@st.composite
def aexprs(draw, depth=2):
    kind = draw(st.sampled_from(
        ["const", "field", "selffield"] + (["add", "sub"] if depth else [])
    ))
    if kind == "const":
        return str(draw(st.integers(-3, 9)))
    if kind == "field":
        return f"n.{draw(st.sampled_from(FIELDS))}"
    if kind == "selffield":
        return f"n.{draw(st.sampled_from(FIELDS))}"
    op = "+" if kind == "add" else "-"
    return (
        f"({draw(aexprs(depth=depth - 1))} {op} {draw(aexprs(depth=depth - 1))})"
    )


@st.composite
def bodies(draw, fname, n_funcs):
    """The else-branch of a function: calls on children + field updates."""
    lines = []
    callees = draw(
        st.lists(st.integers(0, n_funcs - 1), min_size=0, max_size=2)
    )
    for i, c in enumerate(callees):
        d = draw(st.sampled_from(["l", "r"]))
        lines.append(f"v{i} = F{c}(n.{d});")
    n_updates = draw(st.integers(0, 2))
    for _ in range(n_updates):
        f = draw(st.sampled_from(FIELDS))
        if draw(st.booleans()):
            lines.append(f"n.{f} = {draw(aexprs())};")
        else:
            g = draw(st.sampled_from(FIELDS))
            lines.append(
                f"if (n.{g} > {draw(st.integers(0, 3))}) "
                f"{{ n.{f} = {draw(aexprs())} }};"
            )
    lines.append(f"return {draw(aexprs())}")
    return "\n    ".join(lines)


@st.composite
def programs(draw):
    n_funcs = draw(st.integers(1, 3))
    chunks = []
    for i in range(n_funcs):
        body = draw(bodies(f"F{i}", n_funcs))
        chunks.append(
            f"F{i}(n) {{\n  if (n == nil) {{ return 0 }}\n"
            f"  else {{\n    {body}\n  }}\n}}"
        )
    # Main: sequential or parallel composition of 1-2 root calls.
    calls = draw(st.lists(st.integers(0, n_funcs - 1), min_size=1, max_size=2))
    if len(calls) == 2 and draw(st.booleans()):
        main = (
            "Main(n) {\n  { "
            + f"x0 = F{calls[0]}(n) || x1 = F{calls[1]}(n)"
            + " };\n  return x0\n}"
        )
    else:
        body = ";\n  ".join(
            f"x{i} = F{c}(n)" for i, c in enumerate(calls)
        )
        main = f"Main(n) {{\n  {body};\n  return x0\n}}"
    chunks.append(main)
    return "\n".join(chunks)


@settings(max_examples=40, deadline=None)
@given(programs())
def test_round_trip_and_validate(src):
    p = parse_program(src, name="fuzz")
    validate(p)
    printed = program_source(p)
    p2 = parse_program(printed, name="fuzz")
    assert program_source(p2) == printed


@settings(max_examples=30, deadline=None)
@given(programs(), st.integers(0, 10), st.integers(0, 99))
def test_interpreter_total(src, n_nodes, seed):
    """Every generated program runs to completion on every tree."""
    p = parse_program(src, name="fuzz")
    t = random_tree(n_nodes, seed=seed, field_names=FIELDS, value_range=(0, 6))
    r = run(p, t)
    assert isinstance(r.returns, tuple)


@settings(max_examples=20, deadline=None)
@given(programs())
def test_configurations_cover_iterations(src):
    """Every concrete iteration appears as a configuration endpoint —
    the over-approximation direction of the abstraction (Def. 2)."""
    p = parse_program(src, name="fuzz")
    model = ProgramModel(p)
    for t in all_shapes(2):
        endpoints = {
            (c.last_sid, c.last_node)
            for c in enumerate_configurations(model, t)
        }
        trace = run(p, t).trace.iteration_pairs()
        for it in trace:
            assert it in endpoints, (src, it)


@settings(max_examples=15, deadline=None)
@given(programs())
def test_bounded_race_checker_sound_on_fuzz(src):
    """If the bounded checker says race-free, the dynamic happens-before
    detector must find no race on any in-scope tree."""
    from repro.interp import program_races_on

    p = parse_program(src, name="fuzz")
    scope = default_scope(2)
    verdict = check_data_race_bounded(p, scope)
    if verdict.holds:
        for t in scope:
            work = t.clone()
            for node in work.nodes():
                for i, f in enumerate(FIELDS):
                    node.set(f, (len(node.path) + i) % 5)
            assert program_races_on(p, work) == [], (src, t.paths(True))
