"""Property-based fuzzing over randomly generated Retreet programs.

The strategies live in :mod:`repro.gen` — a seeded generator library
shared with the conformance fuzz loop (``repro fuzz``).  Hypothesis
drives the same generators through a :class:`~repro.gen.DrawSource`, so
anything hypothesis shrinks here is a program the CLI fuzzer could have
produced too.  ``derandomize=True`` keeps CI deterministic: the examples
are a pure function of the strategy, never of a random database.

The deterministic lattice tests at the bottom run fixed seeds from the
``repro fuzz --seed 0`` case stream through the full three-engine
oracle; they are the in-suite shadow of the nightly fuzz job.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounded import check_data_race_bounded, default_scope
from repro.core.configurations import ProgramModel, enumerate_configurations
from repro.conformance import OracleConfig, case_for_seed, run_case
from repro.gen import GenConfig, RandomSource, gen_program_source
from repro.gen.strategies import program_sources
from repro.interp import run
from repro.lang import parse_program, program_source, validate
from repro.trees.generators import all_shapes, random_tree

FIELDS = GenConfig().fields

DETERMINISTIC = settings(max_examples=40, deadline=None, derandomize=True)


@DETERMINISTIC
@given(program_sources())
def test_round_trip_and_validate(src):
    p = parse_program(src, name="fuzz")
    validate(p)
    printed = program_source(p)
    p2 = parse_program(printed, name="fuzz")
    assert program_source(p2) == printed


@settings(max_examples=30, deadline=None, derandomize=True)
@given(program_sources(), st.integers(0, 10), st.integers(0, 99))
def test_interpreter_total(src, n_nodes, seed):
    """Every generated program runs to completion on every tree."""
    p = parse_program(src, name="fuzz")
    t = random_tree(n_nodes, seed=seed, field_names=list(FIELDS),
                    value_range=(0, 6))
    r = run(p, t)
    assert isinstance(r.returns, tuple)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(program_sources())
def test_configurations_cover_iterations(src):
    """Every concrete iteration appears as a configuration endpoint —
    the over-approximation direction of the abstraction (Def. 2)."""
    p = parse_program(src, name="fuzz")
    model = ProgramModel(p)
    for t in all_shapes(2):
        endpoints = {
            (c.last_sid, c.last_node)
            for c in enumerate_configurations(model, t)
        }
        trace = run(p, t).trace.iteration_pairs()
        for it in trace:
            assert it in endpoints, (src, it)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(program_sources(GenConfig(parallel_main=True)))
def test_bounded_race_checker_sound_on_fuzz(src):
    """If the bounded checker says race-free, the dynamic happens-before
    detector must find no race on any in-scope tree (the lower edge of
    the soundness lattice, forced onto parallel programs)."""
    from repro.interp import program_races_on

    p = parse_program(src, name="fuzz")
    scope = default_scope(2)
    verdict = check_data_race_bounded(p, scope)
    if verdict.holds:
        for t in scope:
            work = t.clone()
            for node in work.nodes():
                for i, f in enumerate(FIELDS):
                    node.set(f, (len(node.path) + i) % 5)
            assert program_races_on(p, work) == [], (src, t.paths(True))


def test_seeded_generator_is_deterministic():
    """The same seed must always yield the same program — corpus entries
    record their seed as provenance."""
    a = gen_program_source(RandomSource(42))
    b = gen_program_source(RandomSource(42))
    assert a == b
    assert a != gen_program_source(RandomSource(43))


# ----------------------------------------------------------------------
# Deterministic three-engine lattice checks (no hypothesis): fixed cases
# from the `repro fuzz --seed 0` stream run through the full oracle.
# Any soundness-lattice violation (bounded race the symbolic engine
# misses, symbolic race-free with a dynamic race, stale witness, ...)
# is a mismatch and fails the test.

LATTICE_CASE_INDICES = range(6)


@pytest.mark.parametrize("case_index", LATTICE_CASE_INDICES)
def test_three_engine_lattice_on_seed0_stream(case_index):
    case = case_for_seed(0, case_index, max_internal=2)
    result = run_case(case, OracleConfig(sym_deadline_s=20.0))
    assert result.ok, (
        case.name,
        [str(m) for m in result.mismatches],
        result.engines,
    )


def test_lattice_cases_cover_both_kinds():
    kinds = {case_for_seed(0, i).kind for i in LATTICE_CASE_INDICES}
    assert kinds == {"race", "equiv"}
