"""Refactor-safety goldens: the attempts/decided_by schema is pinned.

``tests/golden/attempts_schema.json`` was generated against the
hard-coded ladder in ``core.api`` *before* the plan-executor refactor
(``scripts/gen_attempts_golden.py``); these tests re-run the same
queries through the current code and require the normalized schema —
every attempt field except wall-clock ``elapsed`` — to be byte-identical.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parents[1]
_GOLDEN = _ROOT / "tests" / "golden" / "attempts_schema.json"


def _gen_module():
    spec = importlib.util.spec_from_file_location(
        "gen_attempts_golden", _ROOT / "scripts" / "gen_attempts_golden.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


_GEN = _gen_module()
_QUERIES = _GEN.golden_queries()


@pytest.mark.parametrize("name", sorted(_QUERIES))
def test_attempts_schema_is_byte_identical(name):
    golden = json.loads(_GOLDEN.read_text(encoding="utf-8"))
    assert name in golden, (
        f"no golden for {name}; run scripts/gen_attempts_golden.py"
    )
    snap = _GEN.snapshot(_QUERIES[name]())
    assert snap == golden[name], (
        f"attempts schema drifted for {name}:\n"
        f"golden: {json.dumps(golden[name], indent=1, sort_keys=True)}\n"
        f"now   : {json.dumps(snap, indent=1, sort_keys=True)}"
    )


def test_golden_file_covers_every_query():
    golden = json.loads(_GOLDEN.read_text(encoding="utf-8"))
    assert sorted(golden) == sorted(_QUERIES)
