"""Tests for the symbolic tree-automata library.

The operations are validated against set semantics: for each construction,
acceptance on every small labelled tree must match the expected boolean
combination of the operands' acceptance.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    TrackRegistry,
    TreeAutomaton,
    determinize,
    find_witness,
    is_empty,
    minimize,
    prune_unreachable,
    split_guards,
)
from repro.automata.determinize import StateBudgetExceeded
from repro.mso import syntax as S
from repro.mso.compile import Compiler
from repro.trees.generators import all_shapes


@pytest.fixture(scope="module")
def compiler():
    return Compiler()


@pytest.fixture(scope="module")
def trees():
    return [t for n in range(4) for t in all_shapes(n)]


def _labelings(tree, tracks, limit=None):
    """All labelings of the tree over the given tracks (or a sample)."""
    paths = tree.paths(include_nil=True)
    subsets = list(
        itertools.chain.from_iterable(
            itertools.combinations(paths, r) for r in range(len(paths) + 1)
        )
    )
    combos = itertools.product(subsets, repeat=len(tracks))
    out = []
    for i, combo in enumerate(combos):
        if limit is not None and i >= limit:
            break
        out.append({t: frozenset(s) for t, s in zip(tracks, combo)})
    return out


@pytest.fixture(scope="module")
def a_sing(compiler):
    return compiler.compile(S.Sing("X"), already_fresh=True)


@pytest.fixture(scope="module")
def a_empty(compiler):
    return compiler.compile(S.Empty("X"), already_fresh=True)


@pytest.fixture(scope="module")
def a_subset(compiler):
    return compiler.compile(S.Subset("X", "Y"), already_fresh=True)


class TestRun:
    def test_sing_accepts_singletons(self, a_sing, trees):
        for t in trees:
            for lab in _labelings(t, ["X"], limit=40):
                want = len(lab["X"]) == 1
                assert a_sing.run(t, lab) == want

    def test_empty(self, a_empty, trees):
        for t in trees[:5]:
            for lab in _labelings(t, ["X"], limit=30):
                assert a_empty.run(t, lab) == (len(lab["X"]) == 0)

    def test_describe(self, a_sing):
        out = a_sing.describe()
        assert "states" in out and "tracks" in out


class TestProduct:
    def test_intersection_semantics(self, compiler, a_sing, a_subset, trees):
        prod = a_sing.product(a_subset, lambda x, y: x and y)
        for t in trees[:6]:
            for lab in _labelings(t, ["X", "Y"], limit=40):
                assert prod.run(t, lab) == (
                    a_sing.run(t, lab) and a_subset.run(t, lab)
                )

    def test_union_semantics_product(self, a_sing, a_empty, trees):
        u = a_sing.completed().product(a_empty.completed(), lambda x, y: x or y)
        for t in trees[:6]:
            for lab in _labelings(t, ["X"], limit=40):
                assert u.run(t, lab) == (
                    a_sing.run(t, lab) or a_empty.run(t, lab)
                )

    def test_union_sum_semantics(self, a_sing, a_empty, trees):
        u = a_sing.union_sum(a_empty)
        assert u.n_states == a_sing.n_states + a_empty.n_states
        for t in trees[:6]:
            for lab in _labelings(t, ["X"], limit=40):
                assert u.run(t, lab) == (
                    a_sing.run(t, lab) or a_empty.run(t, lab)
                )

    def test_product_tracks_union(self, a_sing, a_subset):
        prod = a_sing.product(a_subset, lambda x, y: x and y)
        assert prod.tracks == {"X", "Y"}


class TestComplement:
    def test_complement_semantics(self, a_sing, trees):
        comp = a_sing.complemented()
        for t in trees[:6]:
            for lab in _labelings(t, ["X"], limit=40):
                assert comp.run(t, lab) == (not a_sing.run(t, lab))

    def test_double_complement(self, a_sing, trees):
        cc = a_sing.complemented().complemented()
        for t in trees[:6]:
            for lab in _labelings(t, ["X"], limit=30):
                assert cc.run(t, lab) == a_sing.run(t, lab)


class TestProjection:
    def test_projection_is_exists(self, compiler, trees):
        # project X out of Sing(X): "some singleton labelling exists" —
        # true on every tree that has at least one node (incl. nil root).
        a = compiler.compile(S.Sing("X"), already_fresh=True)
        p = a.projected(["X"])
        for t in trees:
            assert p.run(t, {})  # every tree has >= 1 position

    def test_projection_nondeterministic(self, a_sing):
        assert not a_sing.projected(["X"]).deterministic


class TestDeterminize:
    def test_preserves_language(self, a_sing, trees):
        nfta = a_sing.projected([])  # mark nondeterministic, same language
        det = determinize(nfta)
        assert det.deterministic and det.complete
        for t in trees[:6]:
            for lab in _labelings(t, ["X"], limit=30):
                assert det.run(t, lab) == a_sing.run(t, lab)

    def test_budget_raises(self, compiler):
        f = S.Exists1(("x", "y"), S.And((S.Reach("x", "y"), S.Reach("x", "y"))))
        a = compiler.compile(f)
        with pytest.raises(StateBudgetExceeded):
            determinize(a, max_states=1)


class TestMinimize:
    def test_preserves_language(self, a_subset, trees):
        m = minimize(a_subset.completed())
        for t in trees[:6]:
            for lab in _labelings(t, ["X", "Y"], limit=40):
                assert m.run(t, lab) == a_subset.run(t, lab)

    def test_does_not_grow(self, a_sing):
        assert minimize(a_sing.completed()).n_states <= a_sing.completed().n_states

    def test_rejects_nondeterministic(self, a_sing):
        with pytest.raises(ValueError):
            minimize(a_sing.projected([]))

    def test_prune_unreachable(self, a_sing):
        # Add an unreachable state manually.
        bloated = TreeAutomaton(
            registry=a_sing.registry,
            tracks=a_sing.tracks,
            n_states=a_sing.n_states + 1,
            leaf=a_sing.leaf,
            delta=a_sing.delta,
            accepting=a_sing.accepting,
            deterministic=a_sing.deterministic,
        )
        assert prune_unreachable(bloated).n_states == a_sing.n_states


class TestEmptiness:
    def test_nonempty_with_witness(self, a_sing):
        w = find_witness(a_sing)
        assert w is not None
        assert len(w.labels.get("X", ())) == 1
        assert a_sing.run(w.tree, w.labels)

    def test_empty_automaton(self, compiler):
        a = compiler.compile(S.FalseF())
        assert is_empty(a)
        assert find_witness(a) is None

    def test_witness_satisfies_formula(self, compiler):
        f = S.And(
            (
                S.Sing("X"),
                S.Exists1(("x",), S.And((S.In(S.NodeTerm("x"), "X"),
                                          S.Not(S.RootT(S.NodeTerm("x")))))),
            )
        )
        a = compiler.compile(f)
        w = find_witness(a)
        assert w is not None
        from repro.mso.semantics import evaluate

        env = {"X": w.labels["X"]}
        assert evaluate(S.Sing("X"), w.tree, env)
        assert "" not in w.labels["X"]


class TestSplitGuards:
    def test_partition_covers_and_disjoint(self):
        reg = TrackRegistry()
        mgr = reg.manager
        a, b = reg.bit("a"), reg.bit("b")
        parts = split_guards(mgr, [(a, 1), (b, 2), (mgr.apply_and(a, b), 3)])
        # Coverage: OR of all guards is true.
        assert mgr.disj([g for g, _ in parts]) == mgr.true
        # Disjoint: pairwise AND is false.
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                assert mgr.apply_and(parts[i][0], parts[j][0]) == mgr.false

    def test_destination_sets(self):
        reg = TrackRegistry()
        mgr = reg.manager
        a = reg.bit("a")
        parts = dict()
        for g, s in split_guards(mgr, [(a, 1), (mgr.true, 2)]):
            parts[s] = g
        assert frozenset({1, 2}) in parts and frozenset({2}) in parts


class TestRegistry:
    def test_levels_stable(self):
        reg = TrackRegistry()
        assert reg.level("a") == 0
        assert reg.level("b") == 1
        assert reg.level("a") == 0

    def test_name_of(self):
        reg = TrackRegistry()
        reg.level("t0")
        assert reg.name_of(0) == "t0"
        with pytest.raises(KeyError):
            reg.name_of(99)
