"""Tests for repro.runtime: taxonomy, ResourceGuard, status mapping.

Includes the T1.3 regression pair from DESIGN.md §7: a tiny wall-clock
deadline and a tiny state budget must surface as *distinguishable*
statuses ("deadline" vs "budget"), not collapse into one.
"""

import time

import pytest

from repro.bdd.bdd import BDDManager
from repro.runtime import (
    DeadlineExceeded,
    MemoryCeilingExceeded,
    ReproError,
    ResourceExhausted,
    ResourceGuard,
    SolverInternalError,
    StateBudgetExceeded,
    as_guard,
    exhaustion_status,
)


class TestTaxonomy:
    def test_subclassing(self):
        for exc in (DeadlineExceeded, StateBudgetExceeded, MemoryCeilingExceeded):
            assert issubclass(exc, ResourceExhausted)
            assert issubclass(exc, ReproError)
        assert issubclass(SolverInternalError, ReproError)
        assert not issubclass(SolverInternalError, ResourceExhausted)
        # Deadline and budget are *siblings*: catching one must not
        # swallow the other (the seed bug this PR fixes).
        assert not issubclass(DeadlineExceeded, StateBudgetExceeded)
        assert not issubclass(StateBudgetExceeded, DeadlineExceeded)

    def test_phase_and_counters_attached(self):
        e = DeadlineExceeded("out of time", phase="determinize", counters={"states": 7})
        assert e.phase == "determinize"
        assert e.counters == {"states": 7}
        assert "determinize" in str(e)

    def test_exhaustion_status(self):
        assert exhaustion_status(DeadlineExceeded("x")) == "deadline"
        assert exhaustion_status(StateBudgetExceeded("x")) == "budget"
        assert exhaustion_status(MemoryCeilingExceeded("x")) == "memory"

    def test_alias_reexport_identity(self):
        from repro.automata.determinize import StateBudgetExceeded as S2

        assert S2 is StateBudgetExceeded


class TestResourceGuard:
    def test_deadline_raises_deadline(self):
        g = ResourceGuard(deadline=time.perf_counter() - 1.0)
        with pytest.raises(DeadlineExceeded):
            g.check_now("unit")
        assert g.expired()

    def test_tick_is_lazy_then_fires(self):
        g = ResourceGuard(deadline=time.perf_counter() - 1.0, check_every=64)
        for _ in range(63):
            g.tick("unit")  # below the check interval: no clock read
        with pytest.raises(DeadlineExceeded):
            g.tick("unit")

    def test_state_budget_raises_budget(self):
        g = ResourceGuard(state_budget=10)
        g.charge_states(10, "unit")
        with pytest.raises(StateBudgetExceeded) as ei:
            g.charge_states(1, "unit")
        assert ei.value.phase == "unit"
        assert exhaustion_status(ei.value) == "budget"

    def test_node_ceiling_fires_from_bdd_manager(self):
        g = ResourceGuard.start(node_ceiling=100)
        mgr = BDDManager()
        g.bind_manager(mgr)
        assert mgr.guard is g
        with pytest.raises(MemoryCeilingExceeded):
            # Fresh vars allocate fresh nodes; the manager reports its
            # size back every 256 allocations, well within 5000.
            for i in range(5000):
                mgr.var(i)
        g.unbind_managers()
        assert mgr.guard is None

    def test_remaining_and_counters(self):
        g = ResourceGuard.start(deadline_s=100.0, state_budget=50)
        assert 0 < g.remaining_s() <= 100.0
        g.charge_states(3)
        c = g.counters()
        assert c["states_charged"] == 3
        assert "remaining_s" in c
        assert ResourceGuard().remaining_s() is None

    def test_as_guard_coercion(self):
        assert as_guard(None, None) is None
        g = ResourceGuard()
        assert as_guard(g, 123.0) is g
        wrapped = as_guard(None, 123.0)
        assert wrapped.deadline == 123.0


class TestDistinguishableOutcomes:
    """T1.3 (parallel sizecount): deadline vs budget are distinct."""

    def test_tiny_deadline_reports_deadline(self, sizecount_par):
        from repro.core.symbolic import check_data_race_mso

        v = check_data_race_mso(
            sizecount_par, deadline=time.perf_counter() + 0.05
        )
        assert v.status == "deadline"
        assert not v.holds

    def test_tiny_state_budget_reports_budget(self, sizecount_par):
        from repro.core.symbolic import check_data_race_mso
        from repro.solver.solver import MSOSolver

        v = check_data_race_mso(
            sizecount_par, solver=MSOSolver(product_budget=2)
        )
        assert v.status == "budget"
        assert not v.holds
