"""Tests for the mini CSS engine and LCRS conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.css import (
    PROPERTY_CODES,
    CssNode,
    css_to_binary_tree,
    encode_fields,
    minify,
    minify_fused,
    parse_css,
    render_css,
)
from repro.trees.lcrs import NaryNode, from_lcrs, to_lcrs


class TestParser:
    def test_single_rule(self):
        sheet = parse_css(".a { width: 10px }")
        assert len(sheet.children) == 1
        rule = sheet.children[0]
        kinds = [c.kind for c in rule.children]
        assert kinds == ["selector", "decl"]

    def test_multiple_declarations(self):
        sheet = parse_css(".a { width: 10px; font-weight: bold }")
        rule = sheet.children[0]
        decls = [c for c in rule.children if c.kind == "decl"]
        assert [d.text for d in decls] == ["width", "font-weight"]

    def test_function_values(self):
        sheet = parse_css(".a { width: calc(100px, 2) }")
        decl = sheet.children[0].children[1]
        fn = decl.children[0]
        assert fn.kind == "func" and fn.text == "calc"
        assert [c.text for c in fn.children] == ["100px", "2"]

    def test_value_prop_annotation(self):
        sheet = parse_css(".a { font-weight: normal }")
        val = sheet.children[0].children[1].children[0]
        assert val.prop == "font-weight"

    def test_render_round_trip_stable(self):
        src = ".a{width:0;font-weight:400}"
        once = render_css(parse_css(src))
        assert render_css(parse_css(once)) == once


class TestMinification:
    def test_ms_to_s(self):
        assert ".1s" in minify(".a { transition-duration: 100ms }")

    def test_zero_px(self):
        assert "width:0}" in minify(".a { width: 0px }")

    def test_font_weight_keywords(self):
        out = minify(".a { font-weight: normal; font-weight: bold }")
        assert "400" in out and "700" in out

    def test_initial_reduced(self):
        out = minify(".a { min-width: initial }")
        assert "min-width:0" in out

    def test_initial_kept_when_no_shorter_default(self):
        out = minify(".a { bogus-prop: initial }")
        assert "initial" in out

    def test_fused_equals_separate(self):
        srcs = [
            ".a { transition-duration: 100ms; font-weight: normal }",
            ".b { min-width: initial; width: 0px } .c { font-weight: bold }",
            "#x .y { animation-duration: 3000ms; letter-spacing: initial }",
        ]
        for src in srcs:
            assert minify(src) == minify_fused(src)

    def test_minified_never_longer(self):
        src = ".a { font-weight: normal; min-width: initial; width: 0px }"
        assert len(minify(src)) <= len(render_css(parse_css(src)))


class TestEncoding:
    def test_encode_fields_present(self):
        sheet = encode_fields(parse_css(".a { font-weight: normal }"))
        vals = [n for n in sheet.walk() if n.kind == "word"]
        assert vals and vals[0].get("prop") == PROPERTY_CODES["font-weight"]
        assert vals[0].get("vlen") == len("normal")

    def test_binary_tree_size_matches_ast(self):
        src = ".a { width: 0px } .b { font-weight: bold }"
        sheet = parse_css(src)
        t = css_to_binary_tree(src)
        assert t.size == sheet.size


@st.composite
def nary_trees(draw, depth=3):
    n = NaryNode({"v": draw(st.integers(0, 9))})
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            n.children.append(draw(nary_trees(depth=depth - 1)))
    return n


class TestLcrs:
    def test_round_trip_simple(self):
        root = NaryNode({"v": 1})
        a = root.add(NaryNode({"v": 2}))
        root.add(NaryNode({"v": 3}))
        a.add(NaryNode({"v": 4}))
        back = from_lcrs(to_lcrs(root))
        assert [c.get("v") for c in back.children] == [2, 3]
        assert back.children[0].children[0].get("v") == 4

    def test_size_preserved(self):
        root = NaryNode()
        for i in range(4):
            c = root.add(NaryNode())
            for j in range(i):
                c.add(NaryNode())
        assert to_lcrs(root).size == root.size

    @given(nary_trees())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, root):
        def shape(n):
            return (tuple(sorted(n.fields.items())),
                    tuple(shape(c) for c in n.children))

        assert shape(from_lcrs(to_lcrs(root))) == shape(root)

    def test_empty_tree(self):
        from repro.trees.heap import Tree, nil

        assert from_lcrs(Tree(nil())) is None

    def test_first_child_is_left(self):
        root = NaryNode({"v": 0})
        root.add(NaryNode({"v": 1}))
        t = to_lcrs(root)
        assert t.node_at("l").get("v") == 1
        assert t.node_at("r").is_nil
