"""Tests for tree generators (determinism, exhaustiveness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.generators import (
    all_shapes,
    assign_fields,
    full_tree,
    left_chain,
    random_tree,
    right_chain,
    zigzag,
)
from repro.trees.heap import tree_to_tuple

CATALAN = [1, 1, 2, 5, 14, 42]


class TestShapes:
    def test_catalan_counts(self):
        for n, c in enumerate(CATALAN):
            assert sum(1 for _ in all_shapes(n)) == c

    def test_all_shapes_distinct(self):
        shapes = [tree_to_tuple(t) for t in all_shapes(4)]
        assert len(set(map(str, shapes))) == 14

    def test_all_shapes_sizes(self):
        for t in all_shapes(3):
            assert t.size == 3


class TestDeterministicGenerators:
    def test_full_tree_size(self):
        assert full_tree(0).size == 0
        assert full_tree(1).size == 1
        assert full_tree(4).size == 15

    def test_full_tree_height(self):
        assert full_tree(3).height == 3

    def test_left_chain(self):
        t = left_chain(5)
        assert t.size == 5 and t.height == 5
        assert "lllll" in t  # the deepest nil

    def test_right_chain(self):
        t = right_chain(4)
        assert "rrrr" in t and t.size == 4

    def test_zigzag(self):
        t = zigzag(4)
        assert t.size == 4

    def test_fields_kwargs(self):
        t = full_tree(2, v=7)
        assert all(n.get("v") == 7 for n in t.nodes())


class TestRandomTree:
    @given(st.integers(0, 12), st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_size_exact(self, n, seed):
        assert random_tree(n, seed=seed).size == n

    def test_seed_determinism(self):
        a = random_tree(10, seed=5, field_names=("v",))
        b = random_tree(10, seed=5, field_names=("v",))
        assert tree_to_tuple(a) == tree_to_tuple(b)

    def test_different_seeds_differ(self):
        shapes = {
            str(tree_to_tuple(random_tree(8, seed=s))) for s in range(12)
        }
        assert len(shapes) > 1

    def test_value_range(self):
        t = random_tree(10, seed=1, field_names=("v",), value_range=(2, 4))
        assert all(2 <= n.get("v") <= 4 for n in t.nodes())


class TestAssignFields:
    def test_assign_deterministic(self):
        a = assign_fields(full_tree(3), ["v"], seed=9)
        b = assign_fields(full_tree(3), ["v"], seed=9)
        assert tree_to_tuple(a) == tree_to_tuple(b)

    def test_assign_by_function(self):
        t = assign_fields(full_tree(2), [], fn=lambda p: {"d": len(p)})
        assert t.node_at("l").get("d") == 1
        assert t.node_at("").get("d") == 0
