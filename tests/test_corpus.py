"""Every corpus reproducer re-runs through the oracle in CI.

``tests/corpus/`` holds hand-minimized (or fuzz-shrunk) conformance
cases; each entry records what the oracle must observe.  A fixed bug
stays fixed because its reproducer runs here forever; an open one keeps
the suite red until the engines agree again.
"""

from pathlib import Path

import pytest

from repro.conformance import load_corpus, run_entry

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)

EXPECTED_NAMES = {
    "equiv-identity",
    "guarded-write-overapprox",
    "racefree-sizecount",
    "racy-parallel-write",
    "rlimit-crash-reproducer",
    "t13-budget-status",
}


def test_corpus_is_seeded():
    names = {e.name for e in ENTRIES}
    assert EXPECTED_NAMES <= names, names


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry(entry):
    result = run_entry(entry)
    expect = entry.expect
    assert len(result.mismatches) == expect.get("mismatches", 0), (
        entry.name,
        [str(m) for m in result.mismatches],
    )
    if "mismatch_kinds" in expect:
        assert sorted(m.kind for m in result.mismatches) == sorted(
            expect["mismatch_kinds"]
        ), (entry.name, [str(m) for m in result.mismatches])
    for key in ("bounded_found", "symbolic_status", "bounded"):
        if key in expect:
            assert result.engines.get(key) == expect[key], (
                entry.name, key, result.engines.get(key),
            )


def test_guarded_overapprox_is_warning_not_mismatch():
    """The over-approximation entry must actually hit the spurious
    witness path — if it stops warning, the entry has gone stale."""
    entry = next(e for e in ENTRIES if e.name == "guarded-write-overapprox")
    result = run_entry(entry)
    assert result.ok
    assert result.engines["interp_race"] is None
    assert result.engines["bounded_found"] is True
    assert any("spurious-witness" in w for w in result.warnings)
