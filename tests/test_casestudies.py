"""Semantic tests of the four case studies against their substrates."""

import pytest

from repro.casestudies import css as css_case
from repro.casestudies import cycletree as ct_case
from repro.casestudies import sizecount, treemutation
from repro.interp import run
from repro.trees.generators import all_shapes, full_tree, random_tree
from repro.trees.heap import Tree, node


class TestSizecount:
    def test_fused_equals_original_exhaustive(self):
        seq, fused = sizecount.sequential_program(), sizecount.fused_valid()
        for t in (x for n in range(4) for x in all_shapes(n)):
            assert run(seq, t).returns == run(fused, t).returns

    def test_fused_equals_original_random(self):
        seq, fused = sizecount.sequential_program(), sizecount.fused_valid()
        for seed in range(6):
            t = random_tree(13, seed=seed)
            assert run(seq, t).returns == run(fused, t).returns

    def test_invalid_fusion_differs(self):
        """The broken fusion is semantically wrong on real trees."""
        seq, bad = sizecount.sequential_program(), sizecount.fused_invalid()
        diffs = 0
        for seed in range(5):
            t = random_tree(8, seed=seed)
            if run(seq, t).returns != run(bad, t).returns:
                diffs += 1
        assert diffs > 0

    def test_parallel_equals_sequential(self):
        par, seq = sizecount.parallel_program(), sizecount.sequential_program()
        for seed in range(4):
            t = random_tree(9, seed=seed)
            assert run(par, t).returns == run(seq, t).returns


class TestTreeMutation:
    FIELDS = treemutation.FIELDS

    def test_fused_equals_original(self):
        orig = treemutation.original_program()
        fused = treemutation.fused_program()
        for seed in range(6):
            t = random_tree(10, seed=seed, field_names=("v",))
            a, b = run(orig, t), run(fused, t)
            assert a.field_snapshot(self.FIELDS) == b.field_snapshot(self.FIELDS)

    def test_incrmleft_semantics(self):
        """After the simulated swap, n.v = (original right child).v + 1,
        computed bottom-up; leaves (post-swap left nil) get v = 1."""
        orig = treemutation.original_program()
        t = Tree(node(node(), node()))
        r = run(orig, t)
        # children: both leaves -> v=1; root reads new-left = orig-right.
        assert r.tree.node_at("l").get("v") == 1
        assert r.tree.node_at("r").get("v") == 1
        assert r.tree.node_at("").get("v") == 2

    def test_flags_written_everywhere(self):
        orig = treemutation.original_program()
        t = full_tree(3)
        r = run(orig, t)
        for n in r.tree.nodes():
            assert n.get("lr") == 1 and n.get("ll") == 0


class TestCssCase:
    def test_fused_equals_original_on_encoded_ast(self):
        from repro.trees.css import css_to_binary_tree

        src = ".a { font-weight: normal; min-width: initial; width: 0px }"
        tree = css_to_binary_tree(src)
        a = run(css_case.original_program(), tree)
        b = run(css_case.fused_program(), tree)
        assert a.field_snapshot(css_case.FIELDS) == b.field_snapshot(
            css_case.FIELDS
        )

    def test_fused_equals_original_random_fields(self):
        for seed in range(5):
            t = random_tree(
                9, seed=seed, field_names=css_case.FIELDS, value_range=(0, 9)
            )
            a = run(css_case.original_program(), t)
            b = run(css_case.fused_program(), t)
            assert a.field_snapshot(css_case.FIELDS) == b.field_snapshot(
                css_case.FIELDS
            )

    def test_reduceinit_only_on_long_values(self):
        t = Tree(node(vlen=8, value=3))
        r = run(css_case.original_program(), t)
        assert r.tree.root.get("vlen") == 1 and r.tree.root.get("value") == 0

    def test_minifyfont_rewrites(self):
        t = Tree(node(prop=css_case.PROP_FONT_WEIGHT, value=9, vlen=6))
        r = run(css_case.original_program(), t)
        assert r.tree.root.get("value") == 400
        assert r.tree.root.get("vlen") == 3


class TestCycletreeCase:
    FIELDS = ct_case.FIELDS

    def test_fused_equals_original(self):
        seq, fused = ct_case.sequential_program(), ct_case.fused_program()
        for seed in range(5):
            t = random_tree(9, seed=seed)
            a, b = run(seq, t), run(fused, t)
            assert a.field_snapshot(self.FIELDS) == b.field_snapshot(self.FIELDS)

    def test_routing_intervals_consistent(self):
        """min/max fields must bound every num in the subtree (under the
        Fig. 9 call-by-value numbering)."""
        seq = ct_case.sequential_program()
        t = full_tree(3)
        r = run(seq, t)

        def subtree_nums(path):
            out = []
            for n in r.tree.nodes():
                if n.path.startswith(path):
                    out.append(n.get("num"))
            return out

        for n in r.tree.nodes():
            nums = subtree_nums(n.path)
            assert n.get("min") == min(nums)
            assert n.get("max") == max(nums)

    def test_parallel_version_is_schedule_dependent(self):
        """The race is real: some schedule changes the routing fields."""
        from repro.interp import distinct_outcomes, run as irun

        par = ct_case.parallel_program()
        # Pre-set num so the pre-write read is observable (RootMode writes
        # 0 at the root, matching the default initial value).
        t = Tree(node(num=5))
        outs = distinct_outcomes(
            lambda sch: tuple(
                sorted(
                    (p, f, v)
                    for p, fs in irun(par, t, scheduler=sch)
                    .field_snapshot(self.FIELDS)
                    .items()
                    for f, v in fs.items()
                )
            ),
            max_schedules=5000,
        )
        assert len(outs) > 1
