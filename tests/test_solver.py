"""Tests for the MONA-replacement solver front end."""

import pytest

from repro.mso import syntax as S
from repro.mso.semantics import evaluate
from repro.solver import MSOSolver


class TestSatisfiable:
    def test_sat_with_witness(self):
        s = MSOSolver()
        f = S.Exists1(("x",), S.Not(S.IsNilT(S.NodeTerm("x"))))
        r = s.satisfiable(f)
        assert r.is_sat
        assert r.witness is not None
        assert r.witness.tree.size >= 1

    def test_unsat(self):
        s = MSOSolver()
        f = S.Exists1(("x", "y"), S.And((S.Reach("x", "y"), S.Reach("y", "x"))))
        r = s.satisfiable(f)
        assert r.is_unsat and r.witness is None

    def test_witness_labels_decode(self):
        s = MSOSolver()
        f = S.And(
            (S.Sing("X"), S.Exists1(("x",), S.And((
                S.In(S.NodeTerm("x"), "X"),
                S.Not(S.RootT(S.NodeTerm("x"))),
            ))))
        )
        r = s.satisfiable(f)
        assert r.is_sat
        (node,) = r.witness.labels["X"]
        assert node != ""

    def test_without_witness(self):
        s = MSOSolver()
        r = s.satisfiable(S.TrueF(), want_witness=False)
        assert r.is_sat and r.witness is None


class TestValidity:
    def test_valid_formula(self):
        s = MSOSolver()
        f = S.Forall1(("x", "y"), S.Implies(S.LeftOf("x", "y"), S.Reach("x", "y")))
        r = s.valid(f)
        assert r.is_unsat  # negation unsatisfiable == valid

    def test_invalid_formula_gives_counterexample(self):
        s = MSOSolver()
        f = S.Forall1(("x",), S.IsNilT(S.NodeTerm("x")))
        r = s.valid(f)
        assert r.is_sat  # counterexample: any tree with an internal node
        assert r.witness.tree.size >= 1


class TestConjunction:
    def test_satisfiable_conj_matches_monolithic(self):
        s1, s2 = MSOSolver(), MSOSolver()
        parts = [
            S.Sing("X"),
            S.Exists1(("x",), S.In(S.NodeTerm("x"), "X")),
            S.Not(S.Empty("X")),
        ]
        r1 = s1.satisfiable_conj(parts)
        r2 = s2.satisfiable(S.And(tuple(parts)))
        assert r1.status == r2.status == "sat"

    def test_exist_fo_projection(self):
        s = MSOSolver()
        parts = [S.In(S.NodeTerm("@x"), "X"), S.Sing("X")]
        r = s.satisfiable_conj(parts, exist_fo=("@x",))
        assert r.is_sat
        assert "@x" not in (r.witness.labels or {})

    def test_conj_cache(self):
        s = MSOSolver()
        a1 = s.automaton_conj([S.Sing("X")], cache_key="k")
        a2 = s.automaton_conj([S.Sing("X")], cache_key="k")
        assert a1 is a2

    def test_empty_conj_short_circuit(self):
        s = MSOSolver()
        r = s.satisfiable_conj([S.FalseF(), S.Sing("X")])
        assert r.is_unsat


class TestWitnessSoundness:
    """Every witness the solver produces must satisfy the formula per the
    reference semantics."""

    FORMULAS = [
        S.Exists1(("x", "y"), S.And((S.LeftOf("x", "y"),
                                     S.Not(S.IsNilT(S.NodeTerm("y")))))),
        S.And((S.Subset("X", "Y"), S.Sing("X"), S.Not(S.Sing("Y")))),
        S.Exists1(("x",), S.And((S.IsNilT(S.NodeTerm(x := "x", "ll")),
                                 S.Not(S.IsNilT(S.NodeTerm(x, "l")))))),
    ]

    @pytest.mark.parametrize("f", FORMULAS, ids=[str(f)[:40] for f in FORMULAS])
    def test_witness_checks(self, f):
        s = MSOSolver()
        r = s.satisfiable(f)
        assert r.is_sat
        env = {v: r.witness.labels.get(v, frozenset()) for v in S.free_vars(f)}
        assert evaluate(f, r.witness.tree, env)
