"""Soundness of the schedule abstraction against real executions.

The heart of the paper's theory: if the configuration analysis says two
iterations are *Ordered*, then they occur in that order in **every**
interleaving of the concrete program; if *Parallel*, both orders occur in
some interleavings.  Verified here by exhaustively enumerating schedules on
small trees and comparing against the bounded engine's relations.
"""

import pytest

from repro.casestudies import cycletree, sizecount
from repro.core.configurations import (
    ProgramModel,
    enumerate_configurations,
    ordered,
    parallel,
)
from repro.interp import all_schedules, run
from repro.trees.heap import Tree, node


def _iteration_orders(program, tree, max_schedules=4000):
    """For every schedule: the position of each iteration (sid, node)."""
    orders = []

    def one(sch):
        r = run(program, tree, scheduler=sch, record_events=False)
        return tuple(r.trace.iteration_pairs())

    for trace in all_schedules(one, max_schedules=max_schedules):
        orders.append({it: i for i, it in enumerate(trace)})
    return orders


@pytest.mark.parametrize(
    "case",
    ["sizecount-par", "sizecount-seq", "cycletree-par"],
)
def test_ordered_parallel_sound(case):
    prog = {
        "sizecount-par": sizecount.parallel_program,
        "sizecount-seq": sizecount.sequential_program,
        "cycletree-par": cycletree.parallel_program,
    }[case]()
    tree = Tree(node())
    model = ProgramModel(prog)
    configs = enumerate_configurations(model, tree)
    orders = _iteration_orders(prog, tree)
    assert orders

    by_endpoint = {}
    for c in configs:
        by_endpoint.setdefault((c.last_sid, c.last_node), []).append(c)

    # Consider iterations that actually occur in executions.
    occurring = set(orders[0])
    for it in occurring:
        assert it in by_endpoint, f"iteration {it} has no configuration"

    checked_ordered = checked_parallel = 0
    items = sorted(occurring)
    for e1 in items:
        for e2 in items:
            if e1 == e2:
                continue
            c1s, c2s = by_endpoint[e1], by_endpoint[e2]
            is_ordered = any(
                ordered(model, a, b) for a in c1s for b in c2s
            )
            is_parallel = any(
                parallel(model, a, b) for a in c1s for b in c2s
            )
            positions = [(o[e1], o[e2]) for o in orders if e1 in o and e2 in o]
            if not positions:
                continue
            if is_ordered and not is_parallel:
                # Every schedule must respect the order.
                assert all(p1 < p2 for p1, p2 in positions), (case, e1, e2)
                checked_ordered += 1
            if is_parallel:
                # Both orders must be realizable.
                assert any(p1 < p2 for p1, p2 in positions), (case, e1, e2)
                assert any(p2 < p1 for p1, p2 in positions), (case, e1, e2)
                checked_parallel += 1
    assert checked_ordered > 0
    if case.endswith("-par"):
        assert checked_parallel > 0


def test_sequential_program_has_no_parallel_pairs():
    prog = sizecount.sequential_program()
    tree = Tree(node())
    model = ProgramModel(prog)
    configs = enumerate_configurations(model, tree)
    for i, a in enumerate(configs):
        for b in configs[i + 1:]:
            assert not parallel(model, a, b)
