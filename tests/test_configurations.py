"""Tests for configuration enumeration and relations (paper §3/§4)."""

import pytest

from repro.core.configurations import (
    MAIN_SID,
    ProgramModel,
    Record,
    consistent_divergences,
    dependence_cells,
    enumerate_configurations,
    ordered,
    parallel,
)
from repro.lang import parse_program
from repro.trees.generators import all_shapes, full_tree
from repro.trees.heap import Tree, node


@pytest.fixture(scope="module")
def sc_model(sizecount_par):
    return ProgramModel(sizecount_par)


def _configs(model, tree):
    return enumerate_configurations(model, tree)


class TestEnumeration:
    def test_every_config_roots_at_main(self, sc_model):
        for c in _configs(sc_model, full_tree(2)):
            assert c.records[0] == Record(MAIN_SID, "Main", "")

    def test_last_block_is_noncall(self, sc_model):
        for c in _configs(sc_model, full_tree(2)):
            assert not sc_model.table.block(c.last_sid).is_call

    def test_nodes_descend(self, sc_model):
        for c in _configs(sc_model, full_tree(2)):
            for a, b in zip(c.records, c.records[1:]):
                assert b.node.startswith(a.node)
                assert len(b.node) - len(a.node) <= 1

    def test_labels_match_records(self, sc_model):
        for c in _configs(sc_model, full_tree(1)):
            for r in c.records:
                assert r.sid in c.label_at(r.node)
            assert c.last_sid in c.label_at(c.last_node)

    def test_empty_tree_configs(self, sc_model):
        # On a nil root only the nil-return blocks (and main return) fire.
        cfgs = _configs(sc_model, Tree(__import__("repro.trees.heap", fromlist=["nil"]).nil()))
        sids = {c.last_sid for c in cfgs}
        assert sids == {"s0", "s4", "s10"}

    def test_single_node_endpoint_coverage(self, sc_model):
        # On one internal node: every iteration of the real execution must
        # appear as a configuration endpoint.
        from repro.interp import run

        cfgs = _configs(sc_model, Tree(node()))
        endpoints = {(c.last_sid, c.last_node) for c in cfgs}
        trace = run(sc_model.program, Tree(node())).trace.iteration_pairs()
        for it in trace:
            assert it in endpoints

    def test_paper_figure4_configuration_exists(self, sizecount_par):
        """Fig. 4 shows the stack [main, s9@r, s6@u, s1@v, s5@w] ending
        (s3, w) on a left-spine tree; the same chain must be enumerated
        (modulo the concrete shape: we use a left chain of depth 4)."""
        from repro.trees.generators import left_chain

        model = ProgramModel(sizecount_par)
        tree = left_chain(4)
        # Reindex the chain nodes: r="", u="l", v="ll", w="lll" — but
        # Fig. 4's calls descend via r/l mixed; on a pure left chain the
        # chain main -> s9 -> s5 -> s1 -> s5... exists only for left calls.
        cfgs = _configs(model, tree)
        chains = {
            tuple(r.sid for r in c.records) + (c.last_sid,) for c in cfgs
        }
        assert (MAIN_SID, "s9", "s5", "s1", "s5", "s3") in chains

    def test_arith_pins_empty_for_structural_program(self, sc_model):
        for c in _configs(sc_model, full_tree(2)):
            assert c.cond_pins == {}

    def test_treemutation_pins(self, treemutation_orig):
        model = ProgramModel(treemutation_orig)
        cfgs = _configs(model, Tree(node()))
        pinned = [c for c in cfgs if c.cond_pins]
        assert pinned  # n.v blocks pin c2
        assert any(
            v is True for c in pinned for v in c.pins_at(c.last_node).values()
        )


class TestRelationPredicates:
    def _by_endpoint(self, model, tree):
        out = {}
        for c in _configs(model, tree):
            out.setdefault((c.last_sid, c.last_node), []).append(c)
        return out

    def test_parallel_detects_par_blocks(self, sc_model):
        by = self._by_endpoint(sc_model, Tree(node()))
        (c1,) = by[("s3", "")]
        (c2,) = by[("s7", "")]
        assert parallel(sc_model, c1, c2)
        assert not ordered(sc_model, c1, c2)

    def test_ordered_in_sequential_program(self, sizecount_seq):
        model = ProgramModel(sizecount_seq)
        by = self._by_endpoint(model, Tree(node()))
        (c1,) = by[("s3", "")]
        (c2,) = by[("s7", "")]
        assert ordered(model, c1, c2)
        assert not ordered(model, c2, c1)
        assert not parallel(model, c1, c2)

    def test_conditional_blocks_cannot_coexist(self, sc_model):
        # s0 (nil return of Odd) and s3 (else return of Odd) on the same
        # node diverge at an if: no consistent divergence.
        tree = Tree(node())
        cfgs = _configs(sc_model, tree)
        c0 = [c for c in cfgs if (c.last_sid, c.last_node) == ("s0", "l")]
        c3 = [c for c in cfgs if (c.last_sid, c.last_node) == ("s3", "")]
        # s0@l is Odd's nil-return under s9->s5 (Even->Odd on l)? On a
        # single node, Odd runs at l only via Even@root; its nil branch
        # fires. Both configs exist and are NOT conditionally related,
        # so this mainly checks the machinery runs; the if-exclusion is
        # asserted directly below.
        assert c0 or True
        divs = consistent_divergences(sc_model, c3[0], c3[0])
        assert divs == []  # a configuration never diverges from itself

    def test_ordered_same_function_sequence(self, sizecount_seq):
        # (s3, root) from Odd-call happens before (s10, root) (main ret).
        model = ProgramModel(sizecount_seq)
        by = self._by_endpoint(model, Tree(node()))
        (c3,) = by[("s3", "")]
        (c10,) = by[("s10", "")]
        assert ordered(model, c3, c10)

    def test_dependence_cells_ret_flow(self, sizecount_seq):
        model = ProgramModel(sizecount_seq)
        tree = Tree(node())
        by = self._by_endpoint(model, tree)
        (c7l,) = by[("s4", "l")]  # Even nil-return at left child? no:
        # s4 = Even nil-return; on the left nil child via Odd@root's s1.
        (c3,) = by[("s3", "")]
        cells = dependence_cells(model, tree, c7l, c3)
        assert any("ret:Even::0@l" in c for c in cells)

    def test_field_dependence_excludes_nil(self, treemutation_orig):
        model = ProgramModel(treemutation_orig)
        tree = Tree(node())
        by = self._by_endpoint(model, tree)
        # v-write at root (s7: n.v = 1 since children nil) vs itself on
        # another config cannot exist twice; use s3 flags vs s7 guard-read.
        (cf,) = by[("s3", "")]
        c7 = by[("s7", "")][0]
        cells = dependence_cells(model, tree, cf, c7)
        assert any("field:lr@root" in c for c in cells)


class TestConfigCounts:
    @pytest.mark.parametrize("n_nodes,", [(0,), (1,), (2,), (3,)])
    def test_counts_stable(self, sc_model, n_nodes):
        """Pin down enumeration counts per shape size (regression guard)."""
        (n,) = n_nodes
        counts = sorted(
            len(_configs(sc_model, t)) for t in all_shapes(n)
        )
        # The exact values document the abstraction's growth.
        expected = {
            0: [3],
            1: [7],
            2: [11, 11],
            3: [15, 15, 15, 15, 15],
        }[n]
        assert counts == expected
