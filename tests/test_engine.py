"""The engine package: query IR, registry, plans, and the result cache."""

import json

import pytest

from repro.core.api import check_data_race, check_equivalence
from repro.engine import (
    BoundedEngine,
    EquivalenceQuery,
    Limits,
    RaceQuery,
    ResultCache,
    canonical_json,
    content_key,
    degraded,
    degraded_spec,
    get_engine,
    known_engines,
    known_specs,
    plan_for,
    register_engine,
)
from repro.engine.engines import _REGISTRY
from repro.lang import parse_program
from repro.solver.stats import SolverStats

RACY = """\
F0(n) {
  if (n == nil) { return 0 }
  else { n.a = 1; return 0 }
}
Main(n) {
  { x0 = F0(n) || x1 = F0(n) };
  return x0
}
"""

CLEAN = """\
F0(n) {
  if (n == nil) { return 0 }
  else {
    v0 = F0(n.l);
    return (n.a + v0)
  }
}
Main(n) {
  x0 = F0(n);
  return x0
}
"""


def racy_program():
    return parse_program(RACY, name="racy")


def clean_program():
    return parse_program(CLEAN, name="clean")


# ----------------------------------------------------------------------
# Query IR + content keys


def test_canonical_json_is_sorted_and_compact():
    assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


def test_content_key_matches_task_key_formula():
    import hashlib

    payload = {"source": "x", "entry": "Main"}
    expect = hashlib.sha256(
        canonical_json({"kind": "check-race", "payload": payload})
        .encode("utf-8")
    ).hexdigest()
    assert content_key("check-race", payload) == expect


def test_task_key_delegates_to_content_key():
    from repro.service.protocol import Task, task_key

    task = Task(kind="check-race", payload={"source": RACY, "entry": "Main"})
    assert task_key(task) == content_key("check-race", task.payload)


def test_race_query_key_excludes_limits():
    p = racy_program()
    q1 = RaceQuery(program=p, scope=3, limits=Limits(det_budget=10))
    q2 = RaceQuery(program=p, scope=3, limits=Limits(det_budget=99_999))
    assert q1.key() == q2.key()
    q3 = RaceQuery(program=p, scope=4)
    assert q1.key() != q3.key()  # scope is part of what is asked


def test_equivalence_query_key_depends_on_mapping_and_programs():
    p, q = clean_program(), clean_program()
    from repro.core.transform import correspondence_by_key

    mapping = correspondence_by_key(p, q, strict=False)
    e1 = EquivalenceQuery(program=p, program2=q, mapping=mapping, scope=2)
    e2 = EquivalenceQuery(program=p, program2=q, mapping=mapping, scope=2)
    assert e1.key() == e2.key()
    assert e1.kind == "equiv" and e1.key() != RaceQuery(program=p).key()


def test_query_for_case_round_trip():
    from repro.conformance.oracle import Case, query_for_case

    case = Case(kind="race", source=RACY, max_internal=2, name="c")
    q = query_for_case(case)
    assert q.kind == "race" and q.scope == 2
    assert q.key() == query_for_case(case).key()


# ----------------------------------------------------------------------
# Registry + capabilities


def test_registry_has_the_three_builtins():
    assert {"mso", "bounded", "interp"} <= set(known_engines())
    assert get_engine("mso").capabilities.complete_for == "all-trees"
    assert get_engine("bounded").capabilities.complete_for == "scope"
    assert get_engine("interp").capabilities.complete_for == "scope-sampled"
    for name in ("mso", "bounded", "interp"):
        assert "race" in get_engine(name).capabilities.sound_for


def test_unknown_engine_lists_known_names():
    with pytest.raises(ValueError) as exc:
        get_engine("warp")
    msg = str(exc.value)
    assert "warp" in msg and "bounded" in msg and "mso" in msg


def test_register_engine_rejects_duplicates():
    class Fake(BoundedEngine):
        name = "bounded"

    with pytest.raises(ValueError):
        register_engine(Fake())
    # replace=True is the escape hatch; restore the original afterwards.
    original = get_engine("bounded")
    try:
        replacement = Fake()
        assert register_engine(replacement, replace=True) is replacement
        assert get_engine("bounded") is replacement
    finally:
        _REGISTRY["bounded"] = original


def test_bounded_engine_runs_a_query_raw():
    verdict = get_engine("bounded").run(
        RaceQuery(program=racy_program(), scope=2)
    )
    assert verdict.status == "decided" and verdict.found is True
    assert verdict.witness is not None and verdict.witness_tree is not None


def test_interp_engine_finds_dynamic_race():
    eng = get_engine("interp")
    query = RaceQuery(program=racy_program(), scope=2)
    assert eng.race_evidence(query) is not None
    verdict = eng.run(query)
    assert verdict.status == "decided" and verdict.found is True
    clean = RaceQuery(program=clean_program(), scope=2)
    assert eng.race_evidence(clean) is None


# ----------------------------------------------------------------------
# Plans


def test_plan_for_named_plans():
    auto = plan_for("auto")
    assert [r.name for r in auto.rungs] == ["mso", "mso-retry", "bounded"]
    assert len(auto.symbolic_rungs()) == 2
    assert auto.scope_rung().shrink_scope
    assert plan_for("mso").rungs[0].on_internal_error == "raise"
    assert plan_for("bounded").symbolic_rungs() == ()


def test_plan_for_synthesizes_single_rung_for_registered_engine():
    plan = plan_for("interp")
    assert plan.name == "interp" and len(plan.rungs) == 1
    assert plan.rungs[0].shrink_scope  # scope engine → shrink policy


def test_plan_for_unknown_spec_lists_known_specs():
    with pytest.raises(ValueError) as exc:
        plan_for("warp")
    msg = str(exc.value)
    for name in known_specs():
        assert name in msg


def test_degraded_plan_drops_symbolic_rungs():
    d = degraded(plan_for("auto"))
    assert d.symbolic_rungs() == ()
    assert d.scope_rung() is not None
    assert all(r.when == "always" for r in d.rungs)
    assert degraded_spec("auto") == "bounded"
    assert degraded_spec("mso") == "bounded"
    assert degraded_spec("bounded") == "bounded"


# ----------------------------------------------------------------------
# Cache reuse policy


def _record(query, verdict, engine, decided_by=None, scope=None):
    return {
        "key": query.key(),
        "kind": query.kind,
        "scope": query.scope if scope is None else scope,
        "verdict": verdict,
        "holds": verdict in ("race-free", "equivalent"),
        "decided_by": decided_by or engine,
        "decided_engine": engine,
        "result": {"verdict": verdict, "holds": verdict in (
            "race-free", "equivalent")},
    }


def test_cache_counterexample_reusable_from_sound_engine():
    cache = ResultCache()
    query = RaceQuery(program=racy_program(), scope=2)
    rec = _record(query, "race", "bounded", decided_by="bounded@2")
    cache._memory[query.key()] = rec
    assert cache.lookup(query, plan_for("auto")) is rec
    assert cache.lookup(query, plan_for("bounded")) is rec
    # A bounded verdict must not satisfy a strict mso caller.
    assert cache.lookup(query, plan_for("mso")) is None


def test_cache_clean_scope_verdict_needs_same_scope():
    cache = ResultCache()
    query = RaceQuery(program=clean_program(), scope=2)
    cache._memory[query.key()] = _record(
        query, "race-free", "bounded", decided_by="bounded@2"
    )
    assert cache.lookup(query, plan_for("bounded")) is not None
    other = RaceQuery(program=clean_program(), scope=3)
    cache._memory[other.key()] = _record(
        other, "race-free", "bounded", decided_by="bounded@2", scope=2
    )
    assert cache.lookup(other, plan_for("bounded")) is None


def test_cache_clean_all_trees_verdict_reusable_across_scopes():
    cache = ResultCache()
    query = RaceQuery(program=clean_program(), scope=2)
    cache._memory[query.key()] = _record(query, "race-free", "mso")
    assert cache.lookup(query, plan_for("auto")) is not None


def test_cache_sampled_clean_verdict_never_reused():
    cache = ResultCache()
    query = RaceQuery(program=clean_program(), scope=2)
    cache._memory[query.key()] = _record(query, "race-free", "interp")
    assert cache.lookup(query, plan_for("interp")) is None
    # ... but a counterexample from the interpreter is real evidence.
    racy = RaceQuery(program=racy_program(), scope=2)
    cache._memory[racy.key()] = _record(racy, "race", "interp")
    assert cache.lookup(racy, plan_for("interp")) is not None


def test_cache_never_stores_unknown():
    cache = ResultCache()
    query = RaceQuery(program=clean_program(), scope=2)
    assert not cache.store(query, "unknown", False, None, None, {})
    assert cache.lookup(query, plan_for("auto")) is None
    assert cache.stats.stored == 0


def test_cache_bisim_gated_on_allow_bisim():
    from repro.core.transform import correspondence_by_key

    p, q = clean_program(), clean_program()
    mapping = correspondence_by_key(p, q, strict=False)
    query = EquivalenceQuery(program=p, program2=q, mapping=mapping, scope=2)
    cache = ResultCache()
    cache._memory[query.key()] = _record(query, "not-equivalent", "bisim")
    assert cache.lookup(query, plan_for("auto")) is not None
    assert cache.lookup(query, plan_for("auto"), allow_bisim=False) is None


def test_cache_disk_round_trip_and_quarantine(tmp_path):
    query = RaceQuery(program=racy_program(), scope=2)
    cache = ResultCache(tmp_path / "cache")
    assert cache.store(
        query, "race", False, "bounded@2", "bounded",
        {"verdict": "race", "holds": False},
    )
    # A fresh cache over the same directory serves the stored verdict.
    warm = ResultCache(tmp_path / "cache")
    hit = warm.lookup(query, plan_for("auto"))
    assert hit is not None and hit["verdict"] == "race"
    assert warm.stats.hits == 1
    # Corrupt the checksummed record: quarantined, treated as a miss.
    victim = next((tmp_path / "cache" / "store").glob("*.json"))
    victim.write_text(victim.read_text().replace("race", "rice", 1))
    cold = ResultCache(tmp_path / "cache")
    assert cold.lookup(query, plan_for("auto")) is None
    assert cold.stats.misses == 1


# ----------------------------------------------------------------------
# API integration


def test_check_data_race_uses_cache():
    cache = ResultCache()
    first = check_data_race(
        racy_program(), engine="bounded", max_internal=2, replay=False,
        cache=cache,
    )
    assert first.verdict == "race"
    assert first.details["cache"]["hit"] is False
    assert first.details["cache"]["stored"] is True
    second = check_data_race(
        racy_program(), engine="bounded", max_internal=2, replay=False,
        cache=cache,
    )
    assert second.verdict == "race"
    assert second.details["cache"]["hit"] is True
    assert second.details["decided_by"] == first.details["decided_by"]
    assert cache.stats.hits == 1 and cache.stats.stored == 1


def test_check_data_race_cache_respects_limit_changes():
    """Limits are not part of the key: a cached sound verdict answers
    the same question under different budgets."""
    cache = ResultCache()
    check_data_race(
        racy_program(), engine="bounded", max_internal=2, replay=False,
        cache=cache,
    )
    res = check_data_race(
        racy_program(), engine="bounded", max_internal=2,
        bounded_deadline_s=99.0, replay=False, cache=cache,
    )
    assert res.details["cache"]["hit"] is True
    # ... but a different scope is a different question.
    res3 = check_data_race(
        racy_program(), engine="bounded", max_internal=3, replay=False,
        cache=cache,
    )
    assert res3.details["cache"]["hit"] is False


def test_check_equivalence_bisim_verdict_cached():
    from repro.casestudies import sizecount

    cache = ResultCache()
    p = sizecount.sequential_program()
    q = sizecount.fused_invalid()
    mapping = sizecount.invalid_fusion_correspondence()
    first = check_equivalence(
        p, q, mapping, engine="bounded", max_internal=2, replay=False,
        cache=cache,
    )
    second = check_equivalence(
        p, q, mapping, engine="bounded", max_internal=2, replay=False,
        cache=cache,
    )
    assert first.verdict == second.verdict
    assert second.details["cache"]["hit"] is True
    if first.details.get("decided_by") == "bisim":
        # The bisim fast path must not be reused when the gate is off.
        third = check_equivalence(
            p, q, mapping, engine="bounded", max_internal=2, replay=False,
            check_bisim=False, cache=cache,
        )
        assert third.details["cache"]["hit"] is False


def test_cache_counters_flow_into_solver_stats():
    stats = SolverStats()
    cache = ResultCache()
    cache.stats.hits = 2
    cache.stats.misses = 3
    cache.stats.stored = 1
    stats.note_cache(cache.stats)
    snap = stats.as_dict()
    assert snap["cache"] == {"hits": 2, "misses": 3, "stored": 1}


def test_verification_wire_round_trip():
    from repro.core.api import verification_from_dict, verification_to_dict

    res = check_data_race(
        racy_program(), engine="bounded", max_internal=2, replay=False
    )
    wire = verification_to_dict(res)
    json.dumps(wire)  # JSON-plain by construction
    back = verification_from_dict(wire)
    assert back.verdict == res.verdict and back.holds == res.holds
    assert back.query == res.query and back.engine == res.engine
    assert back.details["decided_by"] == res.details["decided_by"]
    # The wire format is a fixed point: re-serializing the lifted
    # result reproduces it exactly.
    assert verification_to_dict(back) == wire


# ----------------------------------------------------------------------
# CLI registry validation


def test_cli_unknown_engine_exits_2(tmp_path, capsys):
    from repro.cli import main

    prog = tmp_path / "p.retreet"
    prog.write_text(CLEAN)
    code = main(["check-race", str(prog), "--engine", "warp"])
    assert code == 2
    err = capsys.readouterr().err
    assert "warp" in err
    for name in ("auto", "mso", "bounded"):
        assert name in err
