"""The multi-tenant solve daemon (DESIGN.md §11).

Covers the admission/fairness scheduler as a pure data structure (fake
clock, exact stride arithmetic), the shared crash-safe sqlite cache
tier (checksums, byte-flip corruption, quarantine, fault probes), and
the daemon end-to-end over its Unix socket: solve/cache/coalesce paths,
backpressure and shedding, status observability, graceful drain, and
journal-replayed restarts.  Daemons run in-process (a thread with its
own asyncio loop, ``isolation="inline"``, bounded engine) so the whole
file stays in seconds.
"""

import asyncio
import json
import sqlite3
import threading
import time
from pathlib import Path

import pytest

from repro.core.api import check_data_race
from repro.engine import ResultCache, plan_for
from repro.engine.query import RaceQuery
from repro.lang import parse_program
from repro.runtime import faults
from repro.service import (
    DaemonClient,
    DaemonConfig,
    FairScheduler,
    Limits,
    ServiceOverloaded,
    SharedCache,
    SolveDaemon,
    task_key,
)
from repro.service.client import DaemonError
from repro.service.scheduler import TokenBucket
from repro.service.worker import task_for_race

RACY = """
F(n) { if (n == nil) { return 0 } else { n.v = 1; a = F(n.l); b = F(n.r); return a + b } }
Main(n) { { x = F(n) || y = F(n) }; return x }
"""

RACEFREE = """
F(n) { if (n == nil) { return 0 } else { a = F(n.l); b = F(n.r); return a + b + n.v } }
Main(n) { { x = F(n.l) || y = F(n.r) }; return x + y }
"""

BOUNDED = {"engine": "bounded", "max_internal": 2}


def racy_task(name="racy", **opts):
    return task_for_race(RACY, options={**BOUNDED, **opts}, name=name)


def racefree_task(name="racefree", **opts):
    return task_for_race(RACEFREE, options={**BOUNDED, **opts}, name=name)


def distinct_task(i):
    """Tasks with distinct content keys (the constant varies)."""
    src = RACEFREE.replace("a + b + n.v", f"a + b + n.v + {i}")
    return task_for_race(src, options=BOUNDED, name=f"t{i}")


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.disarm_all()


# ----------------------------------------------------------------------
# Token bucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_token_bucket_refills_on_the_clock():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_s=2.0, burst=2.0, clock=clock)
    assert bucket.try_take() is None
    assert bucket.try_take() is None
    retry = bucket.try_take()  # empty: hint is time to the next token
    assert retry == pytest.approx(0.5)
    clock.now += 0.5
    assert bucket.try_take() is None
    assert bucket.try_take() is not None


def test_token_bucket_disabled_without_rate():
    bucket = TokenBucket(rate_per_s=None, burst=1.0)
    for _ in range(100):
        assert bucket.try_take() is None


# ----------------------------------------------------------------------
# Fair scheduler


def test_quota_rejects_with_retry_after():
    clock = FakeClock()
    s = FairScheduler(quota_rate=1.0, quota_burst=2.0, clock=clock)
    s.submit("a", distinct_task(0))
    s.submit("a", distinct_task(1))
    with pytest.raises(ServiceOverloaded) as ei:
        s.submit("a", distinct_task(2))
    assert ei.value.reason == "quota"
    assert ei.value.retry_after_s == pytest.approx(1.0)
    assert ei.value.client == "a"
    # The rejection consumed no queue slot and a later token admits.
    assert s.depth() == 2
    clock.now += 1.0
    s.submit("a", distinct_task(2))
    assert s.depth() == 3


def test_queue_full_rejects_equal_priority():
    s = FairScheduler(max_depth=2)
    s.submit("a", distinct_task(0), priority=5)
    s.submit("b", distinct_task(1), priority=5)
    with pytest.raises(ServiceOverloaded) as ei:
        s.submit("c", distinct_task(2), priority=5)
    assert ei.value.reason == "queue-full"
    assert ei.value.retry_after_s > 0
    assert s.stats()["counters"]["rejected_full"] == 1


def test_load_sheds_lowest_priority_newest_first():
    s = FairScheduler(max_depth=3)
    s.submit("a", distinct_task(0), priority=2)
    low_old, _ = s.submit("b", distinct_task(1), priority=1)
    low_new, _ = s.submit("b", distinct_task(2), priority=1)
    _, shed = s.submit("c", distinct_task(3), priority=8)
    # Lowest priority loses; among equals the newest goes first.
    assert [v.key for v in shed] == [low_new.key]
    assert low_new.cancelled and not low_old.cancelled
    assert s.depth() == 3
    # An incoming submission that is itself lowest-or-equal is rejected,
    # never allowed to evict equal-priority work.
    with pytest.raises(ServiceOverloaded):
        s.submit("d", distinct_task(4), priority=1)
    assert s.stats()["counters"]["shed"] == 1


def test_stride_scheduling_weighted_two_to_one():
    s = FairScheduler(max_depth=100, weights={"heavy": 2.0, "light": 1.0})
    for i in range(30):
        s.submit("heavy" if i % 2 else "light", distinct_task(i))
    served = [s.next_ready().client for _ in range(15)]
    # Exact stride ratio over any window: weight 2 gets twice the
    # service of weight 1 (10 vs 5 in 15 dequeues).
    assert served.count("heavy") == 10
    assert served.count("light") == 5


def test_no_starvation_under_flood():
    s = FairScheduler(max_depth=1000)
    for i in range(50):
        s.submit("flooder", distinct_task(i))
    s.submit("victim", distinct_task(999))
    # However deep the flooder's backlog, the victim is served within
    # two dequeues: its pass value equals the flooder's.
    first_two = {s.next_ready().client, s.next_ready().client}
    assert "victim" in first_two


def test_priority_orders_within_a_client():
    s = FairScheduler()
    s.submit("a", distinct_task(0), priority=1)
    hi, _ = s.submit("a", distinct_task(1), priority=9)
    assert s.next_ready().key == hi.key


def test_queue_full_probe_forces_rejection():
    s = FairScheduler(max_depth=100)
    faults.arm("queue-full", hit=1)
    with pytest.raises(ServiceOverloaded) as ei:
        s.submit("a", distinct_task(0))
    assert ei.value.reason == "queue-full"
    # One-shot probe: the next submission admits normally.
    s.submit("a", distinct_task(1))
    assert s.depth() == 1


# ----------------------------------------------------------------------
# Shared cache tier


def test_shared_cache_roundtrip_across_instances(tmp_path):
    path = tmp_path / "cache.sqlite"
    c1 = SharedCache(path)
    c1.put("k1", {"verdict": "race", "n": 1})
    c1.put("k1", {"verdict": "race", "n": 2})  # idempotent overwrite
    c1.close()
    c2 = SharedCache(path)
    assert c2.get("k1") == {"verdict": "race", "n": 2}
    assert c2.get("missing") is None
    assert len(c2) == 1 and c2.verify_all() == (1, 0)
    c2.close()


def test_byte_flip_is_quarantined_never_served(tmp_path):
    path = tmp_path / "cache.sqlite"
    cache = SharedCache(path)
    cache.put("k1", {"verdict": "race-free", "holds": True})
    cache.close()

    # Flip bytes in the stored row behind the cache's back.
    conn = sqlite3.connect(path)
    (payload,) = conn.execute(
        "SELECT payload FROM records WHERE key='k1'"
    ).fetchone()
    evil = payload.replace("race-free", "race-full")
    conn.execute("UPDATE records SET payload=? WHERE key='k1'", (evil,))
    conn.commit()
    conn.close()

    cache = SharedCache(path)
    assert cache.get("k1") is None  # miss, not a wrong verdict
    assert cache.quarantined == ["k1"]
    assert cache.quarantine_count() == 1
    assert len(cache) == 0  # the corrupt row is gone from records
    # Recompute path: a fresh put of the true verdict is served again.
    cache.put("k1", {"verdict": "race-free", "holds": True})
    assert cache.get("k1")["verdict"] == "race-free"
    cache.close()


def test_cache_row_corrupt_probe_quarantines(tmp_path):
    cache = SharedCache(tmp_path / "cache.sqlite")
    cache.put("k1", {"v": 1})
    faults.arm("cache-row-corrupt", hit=1, action="corrupt")
    assert cache.get("k1") is None
    assert cache.quarantined == ["k1"]
    cache.close()


def test_cache_row_corrupt_probe_raise_action(tmp_path):
    cache = SharedCache(tmp_path / "cache.sqlite")
    cache.put("k1", {"v": 1})
    faults.arm("cache-row-corrupt", hit=1, action="raise")
    assert cache.get("k1") is None  # injected raise == unreadable row
    assert cache.quarantine_count() == 1
    cache.close()


def test_result_cache_over_shared_backend(tmp_path):
    """The engine-level ResultCache plugs into the shared tier and the
    soundness gating still applies across instances."""
    path = tmp_path / "cache.sqlite"
    prog = parse_program(RACY, name="racy")
    query = RaceQuery(program=prog, scope=2)

    shared = SharedCache(path)
    rc = ResultCache(backend=shared)
    res = check_data_race(prog, engine="bounded", max_internal=2,
                          replay=False, cache=rc)
    assert res.verdict == "race"
    assert rc.stats.stored >= 1
    shared.close()

    # A second process (fresh instances, same sqlite file) reuses it.
    shared2 = SharedCache(path)
    rc2 = ResultCache(backend=shared2)
    record = rc2.lookup(query, plan_for("bounded"))
    assert record is not None and record["verdict"] == "race"
    assert rc2.stats.hits == 1
    shared2.close()


def test_result_cache_rejects_both_path_and_backend(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(path=tmp_path, backend=SharedCache(tmp_path / "c.db"))


# ----------------------------------------------------------------------
# Daemon end-to-end (in-process)


class DaemonHandle:
    """Run one SolveDaemon on a thread with its own asyncio loop."""

    def __init__(self, run_dir, **kw):
        kw.setdefault("isolation", "inline")
        kw.setdefault("jobs", 1)
        kw.setdefault("poll_s", 0.01)
        self.daemon = SolveDaemon(Path(run_dir), DaemonConfig(**kw))
        self.result = {}
        self.thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        try:
            self.result["code"] = asyncio.run(self.daemon.run())
        except BaseException as e:  # surfaced by __enter__/stop
            self.result["error"] = e

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 15
        while not self.daemon.socket_path.exists():
            if "error" in self.result:
                raise self.result["error"]
            if time.monotonic() > deadline:
                raise TimeoutError("daemon did not come up")
            time.sleep(0.01)
        return self

    def client(self, client_id="test"):
        return DaemonClient(self.daemon.socket_path, client_id=client_id)

    def stop(self, timeout=20):
        if self.thread.is_alive() and "error" not in self.result:
            try:
                with self.client("stopper") as c:
                    c.shutdown()
            except DaemonError:
                pass  # already draining/down
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "daemon failed to drain"
        if "error" in self.result:
            raise self.result["error"]
        return self.result.get("code")

    def __exit__(self, *exc):
        self.stop()


def test_daemon_solves_caches_and_coalesces(tmp_path):
    with DaemonHandle(tmp_path / "run") as h:
        with h.client() as c:
            assert c.ping()["type"] == "pong"
            task = racy_task()
            r1 = c.submit_task(task)
            assert r1["ok"] and not r1["cached"]
            assert r1["value"]["verdict"] == "race"
            assert r1["key"] == task_key(task)
            r2 = c.submit_task(task)
            assert r2["cached"] and r2["value"]["verdict"] == "race"
            r3 = c.submit_task(racefree_task())
            assert r3["value"]["verdict"] == "race-free"
            st = c.status()
        code = h.stop()
    assert code == 0
    assert st["completed"] == 2 and st["cache_hits"] == 1
    assert st["breaker"]["open"] is False
    assert st["breaker"]["trips"] == 0
    assert st["retry_budget"]["per_task_max"] == 2
    assert st["cache"]["shared"]["rows"] == 2
    assert st["queue"]["counters"]["admitted"] == 2
    assert "test" in st["queue"]["clients"]


def test_daemon_restart_replays_journal_and_serves_warm(tmp_path):
    run_dir = tmp_path / "run"
    task = racy_task()
    with DaemonHandle(run_dir) as h:
        with h.client() as c:
            assert not c.submit_task(task)["cached"]
        assert h.stop() == 0

    with DaemonHandle(run_dir) as h2:
        assert h2.daemon.stats["replayed"] == 1
        assert h2.daemon.stats["verified_rows"] == 1
        assert h2.daemon.stats["verify_quarantined"] == 0
        with h2.client() as c:
            r = c.submit_task(task)
            assert r["cached"] and r["value"]["verdict"] == "race"


def test_daemon_quarantines_corruption_across_restart(tmp_path):
    """Byte-flip a shared-cache row between daemon lifetimes: the
    restart quarantines it, the resubmission recomputes, and the
    verdict never goes wrong."""
    run_dir = tmp_path / "run"
    task = racy_task()
    with DaemonHandle(run_dir) as h:
        with h.client() as c:
            r = c.submit_task(task)
            assert r["value"]["verdict"] == "race"
        assert h.stop() == 0

    conn = sqlite3.connect(run_dir / "cache.sqlite")
    conn.execute("UPDATE records SET payload = replace(payload, 'race', 'rxce')")
    conn.commit()
    conn.close()

    with DaemonHandle(run_dir) as h2:
        assert h2.daemon.stats["verify_quarantined"] == 1
        assert h2.daemon.stats["replay_missing"] == 1
        with h2.client() as c:
            r = c.submit_task(task)
            assert not r["cached"]  # recomputed, not served corrupt
            assert r["value"]["verdict"] == "race"


def test_daemon_overload_and_shedding_e2e(tmp_path):
    # poll_s is large so submissions land inside one worker sleep
    # window: admission behavior becomes deterministic.
    with DaemonHandle(tmp_path / "run", queue_depth=1, poll_s=0.5) as h:
        with h.client("flooder") as c:
            fill = c.request({
                "type": "submit", "client": "flooder", "priority": 5,
                "task": distinct_task(0).to_dict(), "wait": False,
            })
            assert fill["type"] == "accepted"
            # Equal priority cannot displace queued work: queue-full.
            rej = c.request({
                "type": "submit", "client": "flooder", "priority": 5,
                "task": distinct_task(1).to_dict(), "wait": False,
            })
            assert rej["type"] == "error"
            assert rej["error"] == "ServiceOverloaded"
            assert rej["reason"] == "queue-full"
            assert rej["retry_after_s"] > 0
            # Higher priority sheds the queued lowest-priority entry.
            vip = c.request({
                "type": "submit", "client": "vip", "priority": 9,
                "task": distinct_task(2).to_dict(), "wait": False,
            })
            assert vip["type"] == "accepted"
            st = c.status()
            assert st["queue"]["counters"]["shed"] == 1
            assert st["queue"]["counters"]["rejected_full"] == 1


def test_daemon_quota_rejects_but_other_client_completes(tmp_path):
    """The ISSUE acceptance shape: a saturating client is rejected with
    ServiceOverloaded while another client's queries still complete."""
    with DaemonHandle(
        tmp_path / "run", client_rate=0.001, client_burst=2.0
    ) as h:
        with h.client("greedy") as greedy:
            greedy.submit_task(distinct_task(0))
            greedy.submit_task(distinct_task(1))
            with pytest.raises(ServiceOverloaded) as ei:
                greedy.submit_task(distinct_task(2))
            assert ei.value.reason == "quota"
        # The other client's bucket is its own: work completes.
        with h.client("patient") as patient:
            r = patient.submit_task(distinct_task(3))
            assert r["ok"] and r["value"]["verdict"] == "race-free"
            st = patient.status()
    assert st["queue"]["counters"]["rejected_quota"] == 1
    assert st["queue"]["clients"]["patient"]["completed"] == 1


def test_daemon_coalesces_concurrent_identical_submissions(tmp_path):
    with DaemonHandle(tmp_path / "run", poll_s=0.3) as h:
        task = racy_task()
        results = {}

        def submit(tag):
            with h.client(tag) as c:
                results[tag] = c.submit_task(task)

        threads = [
            threading.Thread(target=submit, args=(f"c{i}",))
            for i in range(3)
        ]
        for t in threads:
            t.start()
            time.sleep(0.02)  # same poll window, distinct connections
        for t in threads:
            t.join(timeout=30)
        with h.client() as c:
            st = c.status()
    assert len(results) == 3
    for r in results.values():
        assert r["value"]["verdict"] == "race"
    # One solve (or one solve plus cache hits) — never three solves.
    assert st["completed"] == 1
    assert st["coalesced"] + st["cache_hits"] == 2


def test_daemon_rejects_while_draining_and_exits_zero(tmp_path):
    with DaemonHandle(tmp_path / "run") as h:
        with h.client() as c:
            c.submit_task(racy_task())
            c.shutdown()
            reply = c.request({
                "type": "submit", "client": "late", "priority": 5,
                "task": racefree_task().to_dict(),
            })
        assert reply["type"] == "error"
        assert reply["reason"] == "shutting-down"
        assert h.stop() == 0
    # The journal records a clean shutdown.
    events = [
        json.loads(line)["event"]
        for line in (tmp_path / "run" / "daemon-journal.jsonl")
        .read_text().splitlines()
    ]
    assert events[-1] == "shutdown"
    assert json.loads(
        (tmp_path / "run" / "daemon-journal.jsonl")
        .read_text().splitlines()[-1]
    )["clean"] is True


def test_drain_interrupt_probe_aborts_with_exit_one(tmp_path):
    with DaemonHandle(tmp_path / "run", poll_s=1.0) as h:
        faults.arm("drain-interrupt", hit=1)
        with h.client() as c:
            # Queued but unserved (worker sleeps poll_s between polls).
            c.request({
                "type": "submit", "client": "x", "priority": 5,
                "task": racy_task().to_dict(), "wait": False,
            })
            c.shutdown()
        assert h.stop() == 1  # aborted drain is loud, not silent
    journal = (tmp_path / "run" / "daemon-journal.jsonl").read_text()
    last = json.loads(journal.splitlines()[-1])
    assert last["event"] == "shutdown" and last["clean"] is False


def test_daemon_lock_is_exclusive(tmp_path):
    with DaemonHandle(tmp_path / "run") as h:
        rival = SolveDaemon(tmp_path / "run", DaemonConfig())
        with pytest.raises(DaemonError, match="already serves"):
            asyncio.run(rival.run())
        # The incumbent is unharmed.
        with h.client() as c:
            assert c.ping()["type"] == "pong"


def test_daemon_bad_requests_get_typed_errors(tmp_path):
    with DaemonHandle(tmp_path / "run") as h:
        with h.client() as c:
            r = c.request({"type": "no-such"})
            assert r["type"] == "error" and "unknown request" in r["detail"]
            r = c.request({"type": "submit", "client": "x"})  # no task
            assert r["type"] == "error" and r["error"] == "BadRequest"


def test_client_error_when_no_daemon(tmp_path):
    client = DaemonClient(tmp_path / "nope.sock")
    with pytest.raises(DaemonError, match="repro serve"):
        client.ping()


def test_api_daemon_isolation_dispatch(tmp_path):
    prog = parse_program(RACY, name="racy")
    with DaemonHandle(tmp_path / "run") as h:
        res = check_data_race(
            prog, engine="bounded", max_internal=2, replay=False,
            isolation="daemon", daemon_socket=h.daemon.socket_path,
        )
        assert res.verdict == "race" and not res.holds
        assert res.details["isolation"] == "daemon"
        assert res.details["daemon"]["cached"] is False
        res2 = check_data_race(
            prog, engine="bounded", max_internal=2, replay=False,
            isolation="daemon", daemon_socket=h.daemon.socket_path,
        )
        assert res2.verdict == "race"
        assert res2.details["daemon"]["cached"] is True
    with pytest.raises(ValueError, match="daemon_socket"):
        check_data_race(prog, isolation="daemon")


def test_warm_start_from_corpus(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "a.json").write_text(json.dumps({
        "name": "warm-racy", "kind": "race", "source": RACY,
        "max_internal": 2,
    }))
    (corpus / "bad.json").write_text("{ not json")
    with DaemonHandle(tmp_path / "run", warm_corpus=corpus) as h:
        with h.client() as c:
            st = c.status()
            assert st["cache"]["shared"]["rows"] == 1
            # The warmed verdict is served as a cache hit.
            r = c.submit_task(racy_task(name="warm-racy"))
            assert r["cached"] and r["value"]["verdict"] == "race"


def test_cli_client_and_serve_status_stop(tmp_path, capsys):
    """`repro client` and `repro serve --status/--stop` against a live
    daemon, in-process (the chaos script covers the subprocess path)."""
    from repro.cli import main

    src = tmp_path / "racy.retreet"
    src.write_text(RACY)
    run_dir = tmp_path / "run"
    with DaemonHandle(run_dir) as h:
        argv = ["client", str(src), "--socket", str(h.daemon.socket_path),
                "--engine", "bounded", "--max-internal", "2"]
        assert main(argv) == 1  # race found
        capsys.readouterr()
        assert main(argv) == 1  # same query: served from the daemon cache
        assert "(cached by daemon)" in capsys.readouterr().err

        with pytest.raises(SystemExit) as exc:
            main(["client", str(src)])  # no --run-dir/--socket
        assert exc.value.code == 2
        capsys.readouterr()

        assert main(["serve", str(run_dir), "--status"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == 1 and status["cache_hits"] == 1

        assert main(["serve", str(run_dir), "--stop"]) == 0
        assert "daemon draining" in capsys.readouterr().err
        h.thread.join(timeout=20)
        assert h.result.get("code") == 0
