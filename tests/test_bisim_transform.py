"""Tests for bisimulation checking and program transformations."""

import pytest

from repro.casestudies import css, cycletree, sizecount, treemutation
from repro.core.bisim import check_bisimulation
from repro.core.transform import (
    correspondence_by_key,
    invert_correspondence,
    parallelize_entry,
    sequentialize_entry,
)
from repro.interp import run
from repro.lang import parse_program, program_source
from repro.trees.generators import full_tree, random_tree


class TestBisimulation:
    def test_sizecount_valid_fusion(self):
        r = check_bisimulation(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
        )
        assert r.bisimilar

    def test_sizecount_invalid_fusion_still_bisimilar(self):
        """Fig. 6b is structurally bisimilar — its bug is a *schedule*
        conflict, caught by the Conflict query, not by bisimulation."""
        r = check_bisimulation(
            sizecount.sequential_program(),
            sizecount.fused_invalid(),
            sizecount.invalid_fusion_correspondence(),
        )
        assert r.bisimilar

    def test_all_case_studies_bisimilar(self):
        cases = [
            (treemutation.original_program(), treemutation.fused_program(),
             treemutation.fusion_correspondence()),
            (css.original_program(), css.fused_program(),
             css.fusion_correspondence()),
            (cycletree.sequential_program(), cycletree.fused_program(),
             cycletree.fusion_correspondence()),
        ]
        for p, q, m in cases:
            r = check_bisimulation(p, q, m)
            assert r.bisimilar, (p.name, r.problems[:3])

    def test_structurally_different_not_bisimilar(self):
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.l); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="left-only",
        )
        q = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.r); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="right-only",
        )
        # return blocks match textually; the calls descend differently.
        mapping = correspondence_by_key(p, q)
        r = check_bisimulation(p, q, mapping)
        assert not r.bisimilar

    def test_relation_includes_entry(self):
        r = check_bisimulation(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
        )
        assert ("main", "main") in r.relation

    def test_result_str(self):
        r = check_bisimulation(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
        )
        assert "bisimilar" in str(r)


class TestTransforms:
    def test_parallelize_entry(self, sizecount_seq):
        par = parallelize_entry(sizecount_seq)
        assert "||" in program_source(par)
        # Semantics preserved (the traversals are independent).
        for seed in range(3):
            t = random_tree(8, seed=seed)
            assert run(par, t).returns == run(sizecount_seq, t).returns

    def test_sequentialize_entry(self, sizecount_par):
        seq = sequentialize_entry(sizecount_par)
        assert "||" not in program_source(seq)
        t = full_tree(3)
        assert run(seq, t).returns == run(sizecount_par, t).returns

    def test_round_trip(self, sizecount_seq):
        rt = sequentialize_entry(parallelize_entry(sizecount_seq))
        assert program_source(rt) == program_source(sizecount_seq)

    def test_parallelize_requires_two_calls(self):
        p = parse_program("Main(n) { return 0 }")
        with pytest.raises(ValueError):
            parallelize_entry(p)

    def test_original_untouched(self, sizecount_seq):
        src_before = program_source(sizecount_seq)
        parallelize_entry(sizecount_seq)
        assert program_source(sizecount_seq) == src_before


class TestCorrespondence:
    def test_by_key_identity(self, sizecount_seq):
        m = correspondence_by_key(sizecount_seq, sizecount_seq)
        for sid, images in m.items():
            assert sid in images

    def test_by_key_with_overrides(self):
        p = sizecount.sequential_program()
        q = sizecount.fused_valid()
        m = correspondence_by_key(
            p, q, overrides=sizecount.fusion_correspondence()
        )
        assert m == sizecount.fusion_correspondence()

    def test_strict_missing_raises(self):
        p = parse_program("F(n) { return 41 }", name="a")
        q = parse_program("F(n) { return 42 }", name="b")
        with pytest.raises(ValueError):
            correspondence_by_key(p, q)

    def test_non_strict_skips(self):
        p = parse_program("F(n) { return 41 }", name="a")
        q = parse_program("F(n) { return 42 }", name="b")
        assert correspondence_by_key(p, q, strict=False) == {}

    def test_invert(self):
        m = {"a": {"x", "y"}, "b": {"x"}}
        inv = invert_correspondence(m)
        assert inv == {"x": {"a", "b"}, "y": {"a"}}
