"""Tests for static validation of the §2.1 restrictions."""

import pytest

from repro.lang import ValidationError, parse_program, validate


class TestTermination:
    def test_direct_same_node_recursion_rejected(self):
        p = parse_program("F(n, k) { x = F(n, k - 1); return x }")
        with pytest.raises(ValidationError, match="same-node recursion"):
            validate(p)

    def test_mutual_same_node_recursion_rejected(self):
        p = parse_program(
            "F(n) { x = G(n); return x }\nG(n) { x = F(n); return x }"
        )
        with pytest.raises(ValidationError, match="same-node recursion"):
            validate(p)

    def test_descending_recursion_allowed(self, sizecount_par):
        validate(sizecount_par)

    def test_same_node_call_without_cycle_allowed(self):
        # Main calls Odd(n) on the same node: allowed (no cycle).
        p = parse_program(
            "G(n) { return 0 }\nMain(n) { x = G(n); return x }"
        )
        assert validate(p) == []

    def test_mixed_cycle_with_descent_allowed(self):
        # F -> G same-node, G -> F descending: every cycle descends.
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { x = G(n); return x } }\n"
            "G(n) { if (n == nil) { return 0 } else { x = F(n.l); return x } }"
        )
        assert validate(p) == []


class TestSignatures:
    def test_undefined_function(self):
        p = parse_program("F(n) { x = Nope(n.l); return x }")
        with pytest.raises(ValidationError, match="undefined"):
            validate(p)

    def test_call_descends_two_levels(self):
        p = parse_program(
            "G(n) { return 0 }\n"
            "F(n) { if (n == nil) { return 0 } else { x = G(n.l.r); return x } }"
        )
        with pytest.raises(ValidationError, match="more than one level"):
            validate(p)

    def test_target_arity_mismatch(self):
        p = parse_program(
            "G(n) { return 0, 1 }\nF(n) { x = G(n.l); return x }"
        )
        with pytest.raises(ValidationError, match="return values"):
            validate(p)

    def test_zero_targets_allowed(self, cycletree_seq):
        assert validate(cycletree_seq) == []


class TestGuardedDerefs:
    def test_unguarded_field_read_warns(self):
        p = parse_program("F(n) { n.v = n.l.v; return 0 }")
        warnings = validate(p)
        assert any("not syntactically guarded" in w for w in warnings)

    def test_guarded_field_read_clean(self):
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { "
            "if (n.l == nil) { return 0 } else { n.v = n.l.v; return 0 } } }"
        )
        assert validate(p) == []

    def test_case_studies_clean(
        self,
        sizecount_par,
        sizecount_seq,
        treemutation_orig,
        treemutation_fused,
        css_orig,
        css_fused,
        cycletree_seq,
        cycletree_fused,
    ):
        for p in (
            sizecount_par, sizecount_seq, treemutation_orig,
            treemutation_fused, css_orig, css_fused, cycletree_seq,
            cycletree_fused,
        ):
            assert validate(p) == [], p.name


class TestParallelLocals:
    def test_shared_write_in_par_warns(self):
        p = parse_program(
            "G(n) { return 1 }\n"
            "Main(n) { { x = G(n) || x = G(n) }; return x }"
        )
        warnings = validate(p)
        assert any("parallel branches both write" in w for w in warnings)

    def test_disjoint_par_writes_clean(self, sizecount_par):
        assert validate(sizecount_par) == []
