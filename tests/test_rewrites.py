"""Tests for the mechanized mutation-simulation rewrites (paper §5)."""

import pytest

from repro.interp import run
from repro.lang import parse_program, program_source, validate
from repro.lang.rewrites import (
    flag_guard_reads,
    parse_with_mutation,
    simulate_mutation,
)
from repro.trees.generators import full_tree, random_tree

SWAP_SRC = """
Swap(n) {
  if (n == nil) { return 0 }
  else {
    z1 = Swap(n.l);
    z2 = Swap(n.r);
    tmp = n.l;
    n.l = n.r;
    n.r = tmp;
    return 0
  }
}
Main(n) {
  a = Swap(n);
  return 0
}
"""


class TestParseWithMutation:
    def test_swap_parses(self):
        p = parse_with_mutation(SWAP_SRC)
        assert "Swap" in p.funcs

    def test_plain_parser_rejects(self):
        from repro.lang.parser import ParseError

        with pytest.raises(ParseError):
            parse_program(SWAP_SRC)


class TestSimulateMutation:
    def test_swap_becomes_flags(self):
        p = simulate_mutation(parse_with_mutation(SWAP_SRC))
        src = program_source(p)
        assert "n.ll = 0" in src and "n.lr = 1" in src
        assert "n.rl = 1" in src and "n.rr = 0" in src
        assert "tmp" not in src
        assert validate(p) == []

    def test_single_redirect(self):
        src = """
        F(n) {
          if (n == nil) { return 0 }
          else { n.l = n.r; return 0 }
        }
        Main(n) { a = F(n); return 0 }
        """
        p = simulate_mutation(parse_with_mutation(src))
        out = program_source(p)
        assert "n.ll = 0" in out and "n.lr = 1" in out
        assert "n.rl" not in out  # right slot untouched

    def test_converted_program_runs(self):
        p = simulate_mutation(parse_with_mutation(SWAP_SRC))
        r = run(p, full_tree(3))
        for node in r.tree.nodes():
            assert node.get("lr") == 1 and node.get("ll") == 0

    def test_unsimulable_raises(self):
        src = """
        F(n) {
          if (n == nil) { return 0 }
          else { n.l = n.l.l; return 0 }
        }
        Main(n) { a = F(n); return 0 }
        """
        with pytest.raises(ValueError):
            simulate_mutation(parse_with_mutation(src))


class TestFlagGuardReads:
    READER_SRC = """
    R(n) {
      if (n == nil) { return 0 }
      else {
        a = R(n.l);
        b = R(n.r);
        if (n.l == nil) { n.v = 1 } else { n.v = n.l.v + 1 };
        return 0
      }
    }
    Main(n) { x = R(n); return 0 }
    """

    def test_guarded_calls(self):
        p = parse_program(self.READER_SRC)
        flag_guard_reads(p, funcs=["R"])
        src = program_source(p)
        assert "n.ll > 0" in src
        assert src.count("R(n.r") >= 2  # the redirected branches

    def test_assume_swapped_redirects(self):
        p = parse_program(self.READER_SRC)
        flag_guard_reads(p, funcs=["R"], assume_swapped=True)
        src = program_source(p)
        # n.l.v read becomes n.r.v; calls swap direction.
        assert "n.r.v" in src and "n.l.v" not in src

    def test_assume_swapped_matches_case_study_semantics(self):
        """Mechanized conversion reproduces the hand-converted case study:
        swap + redirected reader == the original mutating semantics."""
        # Build: swap phase (converted) followed by guarded reader.
        combined_src = SWAP_SRC.replace(
            "Main(n) {\n  a = Swap(n);\n  return 0\n}", ""
        ) + self.READER_SRC.replace(
            "Main(n) { x = R(n); return 0 }",
            "Main(n) { a = Swap(n); x = R(n); return 0 }",
        )
        p = simulate_mutation(parse_with_mutation(combined_src))
        flag_guard_reads(p, funcs=["R"], assume_swapped=True)
        assert validate(p) == []
        # Reference: actually mutate the tree, then run the plain reader.
        for seed in (1, 2, 3):
            t = random_tree(9, seed=seed, field_names=("v",))
            got = run(p, t)

            ref = t.clone()

            def mutate(nd):
                if not nd.is_nil:
                    mutate(nd.left)
                    mutate(nd.right)
                    nd.left, nd.right = nd.right, nd.left

            mutate(ref.root)
            ref.reindex()

            def incr(nd):
                if nd.is_nil:
                    return
                incr(nd.left)
                incr(nd.right)
                left = nd.left
                nd.set("v", 1 if left.is_nil else left.get("v") + 1)

            incr(ref.root)
            # Compare v per *original* node identity: the converted program
            # never moved nodes, the reference did; match by swapping paths.
            for nd in ref.nodes():
                # nd.path is in the mutated tree; its original path swaps
                # every step.
                orig_path = "".join("r" if c == "l" else "l" for c in nd.path)
                assert got.tree.node_at(orig_path).get("v") == nd.get("v"), (
                    seed, nd.path
                )
