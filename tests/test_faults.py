"""Fault-injection harness tests (DESIGN.md §7).

The soundness claim: an injected failure at any probe point either
surfaces as a typed :class:`ReproError` (``engine="mso"``) or is
absorbed by the degradation ladder, which re-decides through a lower
rung — it must NEVER flip a verdict.  Parallel ``sizecount`` is
race-free and its fusion is valid, so any ``"race"``/``"not-equivalent"``
under injection is a silent wrong verdict and fails the sweep.
"""

import os

import pytest

from repro import check_data_race, check_equivalence
from repro.casestudies import sizecount
from repro.runtime import ReproError, SolverInternalError
from repro.runtime import faults
from repro.runtime.faults import InjectedFault


@pytest.fixture(autouse=True)
def _disarm():
    faults.disarm_all()
    yield
    faults.disarm_all()


class TestHarness:
    def test_arm_validates(self):
        with pytest.raises(ValueError):
            faults.arm("no.such.probe")
        with pytest.raises(ValueError):
            faults.arm("bdd.apply", action="explode")
        with pytest.raises(ValueError):
            faults.arm("bdd.apply", hit=0)

    def test_armed_flag_tracks_specs(self):
        assert faults.ARMED is False
        faults.arm("bdd.apply")
        assert faults.ARMED is True
        faults.disarm_all()
        assert faults.ARMED is False
        assert faults.active() == []

    def test_fire_counts_hits_and_is_one_shot(self):
        faults.arm("product.expand", hit=3)
        assert faults.fire("product.expand", "v1") == "v1"
        assert faults.fire("product.expand", "v2") == "v2"
        with pytest.raises(InjectedFault) as ei:
            faults.fire("product.expand", "v3")
        assert ei.value.phase == "product.expand"
        # One-shot: subsequent hits pass through untouched.
        assert faults.fire("product.expand", "v4") == "v4"

    def test_unarmed_probe_passes_through(self):
        faults.arm("bdd.apply", hit=10)
        assert faults.fire("emptiness.fixpoint", ("q",)) == ("q",)

    def test_injected_fault_is_typed(self):
        assert issubclass(InjectedFault, SolverInternalError)
        assert issubclass(InjectedFault, ReproError)

    def test_install_from_env_parses(self):
        specs = faults.install_from_env(
            {"REPRO_FAULT": "bdd.apply:7:corrupt, emptiness.fixpoint:2"}
        )
        assert [(s.probe, s.hit, s.action) for s in specs] == [
            ("bdd.apply", 7, "corrupt"),
            ("emptiness.fixpoint", 2, "raise"),
        ]
        assert faults.ARMED is True

    def test_install_from_env_empty(self):
        assert faults.install_from_env({}) == []
        assert faults.ARMED is False


# The sweep covers the solver-internal probes only: the service-layer
# probes (queue-full, cache-row-corrupt, drain-interrupt, worker-abort)
# fire in admission/cache/daemon code that an in-process solve never
# reaches, and have their own tests in test_daemon.py / test_service.py.
SWEEP = [
    (probe, action, hit)
    for probe in faults.SOLVER_PROBES
    for action in ("raise", "corrupt")
    for hit in ((1, 97) if action == "raise" else (1,))
]


class TestNoSilentWrongVerdicts:
    """The acceptance sweep: every probe, raise and corrupt."""

    @pytest.mark.parametrize("probe,action,hit", SWEEP)
    def test_race_query_survives_injection(
        self, sizecount_par, probe, action, hit
    ):
        faults.arm(probe, hit=hit, action=action)
        try:
            r = check_data_race(
                sizecount_par,
                engine="auto",
                mso_deadline_s=20,
                max_internal=2,
                replay=False,
            )
        except ReproError:
            return  # typed failure is an accepted outcome
        # The query completed: the verdict must be the true one.
        assert r.verdict == "race-free", (
            f"fault {probe}:{hit}:{action} flipped the verdict to {r.verdict!r}"
        )
        fired = any(s.fired for s in faults.active())
        if fired:
            # The ladder must have recorded the failed symbolic rung and
            # decided through the bounded rung instead.
            outcomes = {a["rung"]: a["outcome"] for a in r.details["attempts"]}
            assert outcomes.get("mso") == "error"
            assert r.details["decided_by"].startswith("bounded@")

    @pytest.mark.parametrize("probe", faults.SOLVER_PROBES)
    def test_equivalence_query_survives_injection(
        self, sizecount_seq, sizecount_fused, probe
    ):
        faults.arm(probe, hit=1, action="raise")
        try:
            r = check_equivalence(
                sizecount_seq,
                sizecount_fused,
                sizecount.fusion_correspondence(),
                engine="auto",
                mso_deadline_s=20,
                max_internal=2,
                replay=False,
            )
        except ReproError:
            return
        assert r.verdict == "equivalent", (
            f"fault at {probe} flipped the verdict to {r.verdict!r}"
        )

    @pytest.mark.parametrize("action", ["raise", "corrupt"])
    def test_mso_engine_surfaces_typed_error(self, sizecount_par, action):
        """With no fallback rung, the failure must escape *typed*."""
        faults.arm("bdd.apply", hit=1, action=action)
        with pytest.raises(SolverInternalError):
            check_data_race(sizecount_par, engine="mso", replay=False)


@pytest.mark.skipif(
    not os.environ.get("REPRO_FAULT"),
    reason="REPRO_FAULT not set (CI fault-injection job sets it)",
)
def test_env_armed_probe_is_sound(sizecount_par):
    """CI entry point: arm whatever REPRO_FAULT names, assert soundness."""
    specs = faults.install_from_env()
    assert specs, "REPRO_FAULT set but parsed to no specs"
    try:
        r = check_data_race(
            sizecount_par, engine="auto", mso_deadline_s=20,
            max_internal=2, replay=False,
        )
    except ReproError:
        return
    assert r.verdict == "race-free"


class TestRefactoredHotPaths:
    """Sweep re-run pinned to the refactored decision hot path.

    The int-table BDD core, the batched antichain fixpoint, and the
    recorded interface saturations of the conflict engine moved the code
    the solver probes sit on; these re-assert the no-silent-wrong-verdict
    contract on the new paths, with deeper hit counts so the probes fire
    mid-saturation (not on the first op) and with the corrupt action on
    the equivalence path too.
    """

    def test_int_table_corrupt_handle_trips_index_error(self):
        """The 1 << 62 stand-in can never be a valid int-table index."""
        from repro.bdd import BDDManager

        mgr = BDDManager()
        bad = faults._corrupted("bdd.apply", mgr.true)
        assert bad == 1 << 62
        with pytest.raises(IndexError):
            mgr.level(bad)
        with pytest.raises(IndexError):
            mgr.apply_and(bad, mgr.var(0))

    @pytest.mark.parametrize(
        "probe,action,hit",
        [
            ("bdd.apply", "raise", 5001),
            ("bdd.apply", "corrupt", 5001),
            ("emptiness.fixpoint", "raise", 33),
            ("emptiness.fixpoint", "corrupt", 33),
            ("product.expand", "raise", 33),
            ("product.expand", "corrupt", 33),
        ],
    )
    def test_conflict_query_survives_mid_run_injection(
        self, sizecount_seq, sizecount_fused, probe, action, hit
    ):
        faults.arm(probe, hit=hit, action=action)
        try:
            r = check_equivalence(
                sizecount_seq,
                sizecount_fused,
                sizecount.fusion_correspondence(),
                engine="auto",
                mso_deadline_s=30,
                max_internal=2,
                replay=False,
            )
        except ReproError:
            return  # typed failure is an accepted outcome
        assert r.verdict == "equivalent", (
            f"fault {probe}:{hit}:{action} flipped the verdict "
            f"to {r.verdict!r}"
        )

    @pytest.mark.parametrize("antichain", [True, False])
    def test_antichain_paths_survive_fixpoint_injection(
        self, sizecount_par, antichain, monkeypatch
    ):
        """The probe sits on the batch drain both with and without
        subsumption pruning; neither path may mis-answer under fire."""
        from repro.automata.product import ProductAutomaton

        monkeypatch.setattr(ProductAutomaton, "ANTICHAIN", antichain)
        faults.arm("emptiness.fixpoint", hit=17, action="corrupt")
        try:
            r = check_data_race(
                sizecount_par,
                engine="auto",
                mso_deadline_s=20,
                max_internal=2,
                replay=False,
            )
        except ReproError:
            return
        assert r.verdict == "race-free"
