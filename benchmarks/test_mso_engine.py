"""Symbolic-engine benchmarks: the queries the pure-Python MONA substitute
decides within budget (race queries — two configuration families).

Four-family conflict queries exceed the product budget in pure Python and
fall back to the bounded engine (measured in ``test_table1.py``); the
fallback behaviour itself is benchmarked here.
"""

import pytest

from repro.casestudies import cycletree, sizecount
from repro.core.symbolic import check_data_race_mso


def test_mso_sizecount_race_free(benchmark):
    """T1.3 on the symbolic engine (paper: MONA 0.02 s).  The sound
    encoder may exceed the state budget on small hosts — the benchmark
    then measures the clean give-up latency instead."""
    import time

    def go():
        return check_data_race_mso(
            sizecount.parallel_program(),
            deadline=time.perf_counter() + 120,
        )

    v = benchmark.pedantic(go, rounds=1, iterations=1)
    if v.status != "decided":
        assert v.status == "budget"
    else:
        assert v.holds


def test_mso_cycletree_race_found(benchmark):
    """T1.7 on the symbolic engine: the n.num race, with witness tree."""

    import time

    def go():
        return check_data_race_mso(
            cycletree.parallel_program(),
            det_budget=50_000,
            deadline=time.perf_counter() + 120,
        )

    v = benchmark.pedantic(go, rounds=1, iterations=1)
    if v.status != "decided":
        pytest.skip("exceeded state budget on this host")
    assert v.found


def test_mso_conflict_falls_back(benchmark):
    """Conflict queries (4 label families) exceed the Python product
    budget; the auto engine must fall back to bounded and still produce
    the right verdict."""
    from repro import check_equivalence

    def go():
        return check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
            engine="auto",
            mso_deadline_s=30,
        )

    r = benchmark.pedantic(go, rounds=1, iterations=1)
    assert r.verdict == "equivalent"
