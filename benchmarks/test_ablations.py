"""Ablation benchmarks for the design choices DESIGN.md calls out.

* automaton minimization on/off in the compiler pipeline;
* union via disjoint sum vs determinized product;
* bounded-checker scaling in the tree-shape scope;
* consistent-condition-set enumeration cost;
* baseline (coarse / syntactic) analysis cost vs the full framework.
"""

import pytest

from repro.baselines import CoarseAnalysis, syntactic_parallel_ok
from repro.casestudies import css, cycletree, sizecount
from repro.core.bounded import check_data_race_bounded, default_scope
from repro.core.configurations import ProgramModel, enumerate_configurations
from repro.mso import syntax as S
from repro.mso.compile import Compiler
from repro.solver import MSOSolver


# ---------------------------------------------------------------------------
# Compiler ablation: minimization on/off
# ---------------------------------------------------------------------------

_RACE_CORE_FORMULA = None


def _config_core_formula():
    """A representative heavy formula: one configuration core conjunct."""
    global _RACE_CORE_FORMULA
    if _RACE_CORE_FORMULA is None:
        from repro.core.encode import Encoder

        model = ProgramModel(sizecount.fused_valid())
        enc = Encoder(model, "AB")
        parts = enc.config_core_parts(enc.tracks(1))
        # A two-conjunct slice: even this much, without minimization,
        # exceeds a 15 s compile deadline (the full core runs for hours) —
        # which is the ablation's point.
        _RACE_CORE_FORMULA = S.And(tuple(parts[:2]))
    return _RACE_CORE_FORMULA


def test_compile_with_minimization(benchmark):
    f = _config_core_formula()

    def go():
        return Compiler(minimize_always=True).compile(f)

    a = benchmark.pedantic(go, rounds=2, iterations=1)
    assert a.n_states > 0


def test_compile_without_minimization(benchmark):
    """Disabling minimization lets intermediate automata grow without
    bound: the same slice that compiles in ~0.1 s with minimization blows
    through a 15 s deadline without it.  The benchmark records the
    time-to-give-up."""
    import time

    from repro.runtime import ResourceExhausted

    f = _config_core_formula()

    def go():
        c = Compiler(minimize_always=False)
        c.deadline = time.perf_counter() + 15
        try:
            return c.compile(f)
        except ResourceExhausted:
            return None

    a = benchmark.pedantic(go, rounds=1, iterations=1)
    assert a is None or a.n_states > 0


# ---------------------------------------------------------------------------
# Union strategy ablation
# ---------------------------------------------------------------------------

def _ordered_formula(fused: bool = False):
    from repro.core.encode import Encoder

    prog = sizecount.fused_valid() if fused else sizecount.sequential_program()
    model = ProgramModel(prog)
    enc = Encoder(model, "ORDF" if fused else "ORD")
    return enc.ordered(enc.tracks(1), enc.tracks(2))


def test_union_disjoint_sum(benchmark):
    """The Ordered relation is a wide disjunction: the sum-based union
    (linear in states) vs the determinizing product (test below)."""
    f = _ordered_formula()

    def go():
        c = Compiler()
        return c.compile(f)

    a = benchmark.pedantic(go, rounds=2, iterations=1)
    assert a.n_states > 0


def test_union_product(benchmark):
    # The smaller fused-program relation: the product path on the full
    # sequential program runs for minutes (the point of the ablation).
    f = _ordered_formula(fused=True)

    def go():
        c = Compiler()
        c._UNION_PRODUCT_LIMIT = 10_000  # force the product path
        return c.compile(f)

    a = benchmark.pedantic(go, rounds=1, iterations=1)
    assert a.n_states > 0


# ---------------------------------------------------------------------------
# Bounded-checker scaling
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("max_internal", [2, 3, 4])
def test_bounded_scope_scaling(benchmark, max_internal):
    """Race query cost vs scope bound (the exactness/price dial of the
    bounded engine)."""
    prog = sizecount.parallel_program()
    scope = default_scope(max_internal)
    v = benchmark(check_data_race_bounded, prog, scope)
    assert v.holds


@pytest.mark.parametrize("n_internal", [2, 3, 4])
def test_configuration_enumeration_scaling(benchmark, n_internal):
    from repro.trees.generators import full_tree

    model = ProgramModel(cycletree.sequential_program())
    tree = full_tree(n_internal)
    configs = benchmark(enumerate_configurations, model, tree)
    assert configs


# ---------------------------------------------------------------------------
# Condition-set enumeration
# ---------------------------------------------------------------------------

def test_consistent_condition_sets(benchmark):
    from repro.core.conditions import ConditionUniverse
    from repro.lang import BlockTable

    prog = css.original_program()

    def go():
        u = ConditionUniverse(BlockTable(prog))
        return u.consistent_sets

    sets = benchmark(go)
    assert len(sets) == 8


# ---------------------------------------------------------------------------
# Baseline costs (precision/price frontier)
# ---------------------------------------------------------------------------

def test_baseline_coarse_css(benchmark):
    prog = css.original_program()

    def go():
        return CoarseAnalysis(prog).can_fuse("ConvertValues", "MinifyFont")

    ok, _ = benchmark(go)
    assert not ok  # imprecise: rejects what Retreet proves


def test_baseline_syntactic_cycletree(benchmark):
    prog = cycletree.parallel_program()
    ok, _ = benchmark(
        syntactic_parallel_ok, prog, "RootMode", "ComputeRouting"
    )
    assert not ok
