#!/usr/bin/env python3
"""Symbolic-engine scaling benchmark — the BENCH_symbolic.json artifact.

Runs all seven Table-1 tasks on the MSO engine under *default* budgets and
records, per task: verdict, wall seconds, query count, reached-state peaks,
BDD nodes, and the antichain pruning counters.  Also records a depth-scaling
curve: the bounded engine's wall time as the scope bound grows on one task,
next to the (depth-independent) symbolic time for the same query — the
paper's core pitch, in one plot-ready series.

Modes::

    python benchmarks/symbolic_bench.py --json BENCH_symbolic.json   # emit
    python benchmarks/symbolic_bench.py --check BENCH_symbolic.json  # gate

``--check`` re-runs the bench and fails (exit 1) on any verdict change, or
on any task slowing down more than 25% against the committed baseline
(with a 0.5 s absolute grace so sub-second tasks don't flap on noise).
CI runs the gate; regenerate the baseline with ``--json`` after a change
that legitimately shifts the numbers and commit the diff.
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.table1 import PAPER, run_bounded, run_mso, tasks  # noqa: E402
from repro.core.bounded import default_scope  # noqa: E402
from repro.solver.solver import MSOSolver  # noqa: E402

#: >25% slower than baseline fails the gate …
SLOWDOWN = 1.25
#: … unless the absolute regression is under this (seconds): timer noise.
GRACE_S = 0.5

#: Depth-scaling task and scope range.  T1.1 is the smallest conflict task;
#: the bounded engine enumerates trees so its cost grows exponentially in
#: the scope while the symbolic time is one flat number.
DEPTH_TASK = "T1.1"
DEPTH_SCOPES = (1, 2, 3, 4)


def run_all(deadline_s: float, with_depth: bool = True):
    t = tasks()
    solver_defaults = MSOSolver()
    out = {
        "bench": "symbolic-table1",
        "config": {
            "det_budget": solver_defaults.compiler.det_budget,
            "product_budget": solver_defaults.product_budget,
            "deadline_s": deadline_s,
        },
        "tasks": {},
    }
    all_match = True
    for tid, desc, kind, paper_verdict, _paper_s in PAPER:
        verdict, secs, mv = run_mso(t[tid], deadline_s=deadline_s)
        st = mv.stats or {}
        match = verdict == paper_verdict
        all_match &= match
        out["tasks"][tid] = {
            "task": desc,
            "kind": kind,
            "verdict": verdict,
            "match": match,
            "seconds": round(secs, 3),
            "queries": mv.queries,
            "max_reached_states": st.get("max_reached", mv.max_states),
            "total_reached": st.get("total_reached"),
            "bdd_nodes": st.get("bdd_nodes"),
            "pruned_tuples": st.get("pruned_tuples"),
            "superseded_tuples": st.get("superseded_tuples"),
            "compile_s": round(st.get("compile_s") or 0.0, 3),
            "explore_s": round(st.get("explore_s") or 0.0, 3),
        }
        print(
            f"{tid:<6} {verdict:>15}{'' if match else ' (!)'} "
            f"{secs:>8.2f}s  queries={mv.queries:<4} "
            f"max_reached={st.get('max_reached', 0):<7} "
            f"pruned={st.get('pruned_tuples', 0)}",
            flush=True,
        )
    out["all_match"] = all_match

    if with_depth:
        curve = []
        for scope in DEPTH_SCOPES:
            _verdict, secs = run_bounded(t[DEPTH_TASK], default_scope(scope))
            curve.append({"scope": scope, "seconds": round(secs, 3)})
            print(f"depth  scope={scope}  bounded={secs:.3f}s", flush=True)
        out["depth_scaling"] = {
            "task": DEPTH_TASK,
            "bounded": curve,
            "symbolic_seconds": out["tasks"][DEPTH_TASK]["seconds"],
            "note": "bounded cost grows with the scope bound; the symbolic "
                    "time covers all depths at once",
        }
    return out


def check(baseline_path: Path, fresh) -> int:
    base = json.loads(baseline_path.read_text())
    failures = []
    for tid, brec in base.get("tasks", {}).items():
        frec = fresh["tasks"].get(tid)
        if frec is None:
            failures.append(f"{tid}: missing from fresh run")
            continue
        if frec["verdict"] != brec["verdict"]:
            failures.append(
                f"{tid}: verdict changed {brec['verdict']!r} -> "
                f"{frec['verdict']!r}"
            )
        limit = max(brec["seconds"] * SLOWDOWN, brec["seconds"] + GRACE_S)
        if frec["seconds"] > limit:
            failures.append(
                f"{tid}: {frec['seconds']:.2f}s exceeds "
                f"{limit:.2f}s (baseline {brec['seconds']:.2f}s + 25%)"
            )
    if failures:
        print("symbolic-bench gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    n = len(base.get("tasks", {}))
    print(f"symbolic-bench gate OK ({n} tasks within 25% of baseline)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", metavar="OUT", default=None,
                    help="write BENCH_symbolic.json here")
    ap.add_argument("--check", metavar="BASELINE", default=None,
                    help="re-run and gate against a committed baseline")
    ap.add_argument("--deadline", type=float, default=300.0,
                    help="per-task symbolic deadline (seconds)")
    ap.add_argument("--no-depth", action="store_true",
                    help="skip the bounded depth-scaling curve")
    args = ap.parse_args()

    t0 = time.perf_counter()
    fresh = run_all(args.deadline, with_depth=not args.no_depth)
    fresh["wall_s"] = round(time.perf_counter() - t0, 2)
    print(f"total {fresh['wall_s']}s; verdicts "
          f"{'ALL MATCH' if fresh['all_match'] else 'MISMATCH'}")

    if args.json:
        Path(args.json).write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if args.check:
        rc = check(Path(args.check), fresh)
        if rc:
            return rc
    return 0 if fresh["all_match"] else 1


if __name__ == "__main__":
    sys.exit(main())
