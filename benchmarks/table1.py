#!/usr/bin/env python3
"""Regenerate the paper's evaluation table (§5) — paper vs this repo.

Runs all seven verification tasks on the bounded engine (exhaustive up to
the scope bound) and, where the pure-Python symbolic engine completes
within budget, on the MSO engine too.  Prints the table EXPERIMENTS.md
records.

Usage:  python benchmarks/table1.py [--scope 4] [--mso] [--json OUT]
"""

import argparse
import json
import sys
import time

from repro.casestudies import css, cycletree, sizecount, treemutation
from repro.core.bounded import (
    check_conflict_bounded,
    check_data_race_bounded,
    default_scope,
)
from repro.core.symbolic import check_conflict_mso, check_data_race_mso

PAPER = [
    # (id, description, kind, paper verdict, paper MONA secs)
    ("T1.1", "sizecount: fuse Odd+Even (Fig 6a)", "conflict", "valid", 0.14),
    ("T1.2", "sizecount: broken fusion (Fig 6b)", "conflict", "counterexample", 0.14),
    ("T1.3", "sizecount: Odd(n) || Even(n)", "race", "race-free", 0.02),
    ("T1.4", "treemutation: fuse Swap+IncrmLeft", "conflict", "valid", 0.12),
    ("T1.5", "css: fuse 3 minification passes", "conflict", "valid", 6.88),
    ("T1.6", "cycletree: fuse numbering+routing", "conflict", "valid", 490.55),
    ("T1.7", "cycletree: numbering || routing", "race", "counterexample", 0.95),
]


def tasks():
    return {
        "T1.1": ("conflict", sizecount.sequential_program(),
                 sizecount.fused_valid(), sizecount.fusion_correspondence()),
        "T1.2": ("conflict", sizecount.sequential_program(),
                 sizecount.fused_invalid(),
                 sizecount.invalid_fusion_correspondence()),
        "T1.3": ("race", sizecount.parallel_program()),
        "T1.4": ("conflict", treemutation.original_program(),
                 treemutation.fused_program(),
                 treemutation.fusion_correspondence()),
        "T1.5": ("conflict", css.original_program(), css.fused_program(),
                 css.fusion_correspondence()),
        "T1.6": ("conflict", cycletree.sequential_program(),
                 cycletree.fused_program(),
                 cycletree.fusion_correspondence()),
        "T1.7": ("race", cycletree.parallel_program()),
    }


def run_bounded(task, scope):
    if task[0] == "race":
        v = check_data_race_bounded(task[1], scope)
        verdict = "counterexample" if v.found else "race-free"
    else:
        v = check_conflict_bounded(task[1], task[2], task[3], scope)
        verdict = "counterexample" if v.found else "valid"
    return verdict, v.elapsed


def run_mso(task, deadline_s=120.0):
    t0 = time.perf_counter()
    if task[0] == "race":
        v = check_data_race_mso(task[1], deadline=t0 + deadline_s)
        good, bad = "race-free", "counterexample"
    else:
        v = check_conflict_mso(
            task[1], task[2], task[3], deadline=t0 + deadline_s
        )
        good, bad = "valid", "counterexample"
    if v.status != "decided":
        # Pass the guard's diagnosis through: "deadline" / "budget" /
        # "memory" are distinct outcomes in the table.
        return v.status, time.perf_counter() - t0, v
    return (bad if v.found else good), v.elapsed, v


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scope", type=int, default=4,
                    help="bounded-engine scope (max internal nodes)")
    ap.add_argument("--mso", action="store_true",
                    help="also run the symbolic engine (race queries; "
                         "overruns report 'deadline'/'budget'/'memory')")
    ap.add_argument("--mso-deadline", type=float, default=120.0)
    ap.add_argument("--json", metavar="OUT", default=None,
                    help="also dump verdicts, engines, and per-phase "
                         "timings as JSON to OUT")
    args = ap.parse_args()

    scope = default_scope(args.scope)
    t = tasks()
    header = (
        f"{'id':<6} {'task':<38} {'paper':>15} {'paper s':>9} "
        f"{'bounded':>15} {'bnd s':>8}"
    )
    if args.mso:
        header += f" {'mso':>15} {'mso s':>9}"
    print(header)
    print("-" * len(header))
    all_match = True
    records = []
    for tid, desc, kind, paper_verdict, paper_s in PAPER:
        verdict, secs = run_bounded(t[tid], scope)
        match = verdict == paper_verdict
        all_match &= match
        row = (
            f"{tid:<6} {desc:<38} {paper_verdict:>15} {paper_s:>9.2f} "
            f"{verdict + ('' if match else ' (!)'):>15} {secs:>8.3f}"
        )
        rec = {
            "id": tid,
            "task": desc,
            "kind": kind,
            "paper_verdict": paper_verdict,
            "paper_seconds": paper_s,
            "bounded": {
                "verdict": verdict,
                "seconds": round(secs, 4),
                "scope": args.scope,
                "match": match,
            },
        }
        if args.mso:
            mso_verdict, mso_secs, mv = run_mso(t[tid], args.mso_deadline)
            row += f" {mso_verdict:>15} {mso_secs:>9.2f}"
            rec["mso"] = {
                "verdict": mso_verdict,
                "seconds": round(mso_secs, 4),
                "queries": mv.queries,
                "max_reached_states": mv.max_states,
                "match": mso_verdict == paper_verdict,
                "phases": mv.stats,
            }
        records.append(rec)
        print(row, flush=True)
    print("-" * len(header))
    print(
        f"verdicts {'ALL MATCH' if all_match else 'MISMATCH'} the paper "
        f"(bounded engine, scope <= {args.scope} internal nodes)"
    )
    if args.json:
        payload = {
            "scope": args.scope,
            "mso": bool(args.mso),
            "all_match": all_match,
            "tasks": records,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if all_match else 1


if __name__ == "__main__":
    sys.exit(main())
