"""Shared benchmark fixtures and the paper's reference numbers."""

import pytest

# MONA solve times reported in §5 of the paper (seconds), for shape
# comparison in EXPERIMENTS.md.  Absolute values are not comparable: the
# paper ran MONA (C) on a 40-core 2.2 GHz server; we run a pure-Python
# solver.  What must match: the verdicts, and the relative ordering
# (race checks << small fusions << CSS << cycletree fusion).
PAPER_TIMES = {
    "T1.1 sizecount fusion (valid)": 0.14,
    "T1.2 sizecount fusion (invalid)": 0.14,
    "T1.3 sizecount race-freeness": 0.02,
    "T1.4 treemutation fusion": 0.12,
    "T1.5 css fusion": 6.88,
    "T1.6 cycletree fusion": 490.55,
    "T1.7 cycletree parallelization": 0.95,
}

PAPER_VERDICTS = {
    "T1.1 sizecount fusion (valid)": "equivalent",
    "T1.2 sizecount fusion (invalid)": "not-equivalent",
    "T1.3 sizecount race-freeness": "race-free",
    "T1.4 treemutation fusion": "equivalent",
    "T1.5 css fusion": "equivalent",
    "T1.6 cycletree fusion": "equivalent",
    "T1.7 cycletree parallelization": "race",
}


@pytest.fixture(scope="session")
def scope3():
    from repro.core.bounded import default_scope

    return default_scope(3)


@pytest.fixture(scope="session")
def scope4():
    from repro.core.bounded import default_scope

    return default_scope(4)
