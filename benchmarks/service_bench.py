#!/usr/bin/env python3
"""Daemon throughput benchmark — cold vs. warm shared cache.

Boots a real ``repro serve`` daemon on a fresh run directory, pushes a
batch of distinct bounded race queries through the Unix socket twice —
once cold (every query solved) and once warm (every query answered from
the shared sqlite cache tier) — and reports queries/sec with p50/p95
per-request latency for each pass.  The warm/cold ratio is the headline
number: it is what the long-lived daemon buys over re-spawning `repro
batch` per workload.

Usage::

    PYTHONPATH=src python benchmarks/service_bench.py [--queries 24]
        [--jobs 2] [--json BENCH_service.json]

Writes the JSON artifact (schema: ``{"config", "cold", "warm",
"speedup_warm_over_cold"}``, each pass carrying ``{"qps", "p50_ms",
"p95_ms", "total_s", "solved", "cache_hits"}``) when ``--json`` is
given; this seeds the bench trajectory (ROADMAP item 3).
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import DaemonClient  # noqa: E402
from repro.service.worker import task_for_race  # noqa: E402

RACEFREE = """
F(n) { if (n == nil) { return 0 } else { a = F(n.l); b = F(n.r); return a + b + n.v } }
Main(n) { { x = F(n.l) || y = F(n.r) }; return x + y }
"""

BOUNDED = {"engine": "bounded", "max_internal": 2}


def make_tasks(n):
    """``n`` race queries with distinct content keys."""
    tasks = []
    for i in range(n):
        src = RACEFREE.replace("a + b + n.v", f"a + b + n.v + {i}")
        tasks.append(task_for_race(src, options=BOUNDED, name=f"q{i}"))
    return tasks


def percentile(samples, q):
    return statistics.quantiles(samples, n=100)[q - 1] if len(samples) > 1 else samples[0]


def run_pass(client, tasks):
    latencies = []
    hits = 0
    t0 = time.perf_counter()
    for task in tasks:
        s = time.perf_counter()
        reply = client.submit_task(task, max_wait_s=120.0)
        latencies.append(time.perf_counter() - s)
        if reply.get("cached"):
            hits += 1
        verdict = reply["value"]["verdict"]
        if verdict != "race-free":
            raise SystemExit(f"unexpected verdict {verdict!r} for {task.name}")
    total = time.perf_counter() - t0
    return {
        "qps": round(len(tasks) / total, 2),
        "p50_ms": round(percentile(latencies, 50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 95) * 1000, 2),
        "total_s": round(total, 3),
        "solved": len(tasks) - hits,
        "cache_hits": hits,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--queries", type=int, default=24)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--json", default=None, help="write BENCH_service.json here")
    args = ap.parse_args()

    run_dir = Path(tempfile.mkdtemp(prefix="service-bench-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT", None)
    env.pop("REPRO_FAULT_ONCE", None)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(run_dir),
         "--jobs", str(args.jobs), "--isolation", "inline", "--quiet"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    socket_path = run_dir / "daemon.sock"
    deadline = time.monotonic() + 30.0
    while not socket_path.exists():
        if daemon.poll() is not None or time.monotonic() > deadline:
            raise SystemExit("daemon failed to start")
        time.sleep(0.02)

    tasks = make_tasks(args.queries)
    try:
        with DaemonClient(socket_path, client_id="bench", timeout_s=300.0) as c:
            cold = run_pass(c, tasks)
            warm = run_pass(c, tasks)
            c.shutdown()
        daemon.wait(timeout=60)
    finally:
        if daemon.poll() is None:
            daemon.kill()

    if warm["cache_hits"] != len(tasks):
        raise SystemExit(
            f"warm pass expected {len(tasks)} cache hits, got {warm['cache_hits']}"
        )

    out = {
        "bench": "service-daemon-throughput",
        "config": {
            "queries": args.queries,
            "jobs": args.jobs,
            "engine": "bounded",
            "max_internal": BOUNDED["max_internal"],
            "isolation": "inline",
        },
        "cold": cold,
        "warm": warm,
        "speedup_warm_over_cold": round(warm["qps"] / cold["qps"], 2),
    }
    print(json.dumps(out, indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)


if __name__ == "__main__":
    main()
