"""Table 1 — the paper's evaluation (§5), one benchmark per verification
task.

Each benchmark runs the corresponding query on the bounded engine (scope:
every tree shape with ≤ 4 internal nodes) and asserts the verdict the paper
reports.  The symbolic (MSO) engine's timings for the queries it completes
within budget are benchmarked in ``test_mso_engine.py``; per-engine numbers
are collated into EXPERIMENTS.md by ``benchmarks/table1.py``.
"""

import pytest

from repro.casestudies import css, cycletree, sizecount, treemutation
from repro.core.bounded import check_conflict_bounded, check_data_race_bounded


def test_sizecount_fusion_valid(benchmark, scope4):
    """T1.1 — fuse Odd/Even into Fig. 6a (paper: valid, 0.14 s MONA)."""
    p = sizecount.sequential_program()
    q = sizecount.fused_valid()
    m = sizecount.fusion_correspondence()
    v = benchmark(check_conflict_bounded, p, q, m, scope4)
    assert v.holds


def test_sizecount_fusion_invalid(benchmark, scope4):
    """T1.2 — the broken fusion of Fig. 6b (paper: counterexample)."""
    p = sizecount.sequential_program()
    q = sizecount.fused_invalid()
    m = sizecount.invalid_fusion_correspondence()
    v = benchmark(check_conflict_bounded, p, q, m, scope4)
    assert v.found


def test_sizecount_race_free(benchmark, scope4):
    """T1.3 — Odd(n) || Even(n) is race-free (paper: 0.02 s MONA)."""
    p = sizecount.parallel_program()
    v = benchmark(check_data_race_bounded, p, scope4)
    assert v.holds


def test_treemutation_fusion(benchmark, scope4):
    """T1.4 — fuse Swap + IncrmLeft after mutation simulation (valid)."""
    p = treemutation.original_program()
    q = treemutation.fused_program()
    m = treemutation.fusion_correspondence()
    v = benchmark(check_conflict_bounded, p, q, m, scope4)
    assert v.holds


def test_css_fusion(benchmark, scope4):
    """T1.5 — fuse the three CSS minification passes (paper: 6.88 s)."""
    p = css.original_program()
    q = css.fused_program()
    m = css.fusion_correspondence()
    v = benchmark(check_conflict_bounded, p, q, m, scope4)
    assert v.holds


def test_cycletree_fusion(benchmark, scope4):
    """T1.6 — fuse cyclic numbering + routing (paper's hardest: 490.55 s)."""
    p = cycletree.sequential_program()
    q = cycletree.fused_program()
    m = cycletree.fusion_correspondence()
    v = benchmark(check_conflict_bounded, p, q, m, scope4)
    assert v.holds


def test_cycletree_parallel_race(benchmark, scope4):
    """T1.7 — RootMode || ComputeRouting races on n.num (true positive)."""
    p = cycletree.parallel_program()
    v = benchmark(check_data_race_bounded, p, scope4)
    assert v.found
