"""Plan-equivalence acceptance: the cache must change nothing but speed.

Runs a fast corpus of Table-1 queries through ``engine="auto"`` three
ways and fails on any drift:

1. **baseline** — no cache: the plan executor alone;
2. **cold cache** — a fresh on-disk :class:`repro.engine.ResultCache`:
   every verdict, ``decided_by`` and normalized attempt schema must be
   byte-identical to the baseline (the cache may only *observe* a cold
   run, never steer it);
3. **warm cache** — a *new* ``ResultCache`` over the same directory
   (so hits must come through the checksummed disk store): every query
   must be decided with at least one cache hit, and every verdict must
   match the baseline.

Run from the repo root::

    PYTHONPATH=src python scripts/plan_equivalence.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.casestudies import cycletree, sizecount, treemutation  # noqa: E402
from repro.core.api import check_data_race, check_equivalence  # noqa: E402
from repro.engine import ResultCache, normalized_attempts  # noqa: E402


def corpus():
    """name -> callable(cache) producing a VerificationResult; all
    ``engine="auto"`` with ``mso_deadline_s=None`` so the recorded
    attempt limits are wall-clock independent."""
    return {
        "t1.2-race": lambda cache: check_data_race(
            sizecount.sequential_program(), mso_deadline_s=None,
            replay=False, cache=cache,
        ),
        "t1.3-race": lambda cache: check_data_race(
            sizecount.parallel_program(), mso_deadline_s=None,
            replay=False, cache=cache,
        ),
        "t1.7-race": lambda cache: check_data_race(
            cycletree.parallel_program(), max_internal=2,
            mso_deadline_s=None, replay=False, cache=cache,
        ),
        "t1.2-fusion": lambda cache: check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_invalid(),
            sizecount.invalid_fusion_correspondence(),
            mso_deadline_s=None, replay=False, cache=cache,
        ),
        "t1.4-fusion": lambda cache: check_equivalence(
            treemutation.original_program(),
            treemutation.fused_program(),
            treemutation.fusion_correspondence(),
            mso_deadline_s=None, replay=False, cache=cache,
        ),
    }


def snapshot(res):
    return {
        "verdict": res.verdict,
        "engine": res.engine,
        "decided_by": res.details.get("decided_by"),
        "attempts": normalized_attempts(res.details.get("attempts", [])),
    }


def main() -> int:
    failures = []
    queries = corpus()

    baseline = {name: snapshot(run(None)) for name, run in queries.items()}
    for name, snap in baseline.items():
        print(f"baseline  {name}: {snap['verdict']} "
              f"decided_by={snap['decided_by']}")
        if snap["verdict"] == "unknown":
            failures.append(f"{name}: baseline verdict is unknown")

    with tempfile.TemporaryDirectory(prefix="plan-equiv-") as tmp:
        cache_dir = Path(tmp) / "cache"

        cold = ResultCache(cache_dir)
        for name, run in queries.items():
            snap = snapshot(run(cold))
            if snap != baseline[name]:
                failures.append(
                    f"{name}: cold-cache run drifted from baseline\n"
                    f"  baseline: {baseline[name]}\n  cold:     {snap}"
                )
        print(f"cold cache: {cold.stats.as_dict()}")
        if cold.stats.hits:
            failures.append(
                f"cold cache reported {cold.stats.hits} hit(s); "
                "expected none on first sight of every query"
            )

        warm = ResultCache(cache_dir)  # fresh instance: disk hits only
        for name, run in queries.items():
            res = run(warm)
            cache_note = res.details.get("cache") or {}
            print(f"warm      {name}: {res.verdict} "
                  f"hit={cache_note.get('hit')}")
            if res.verdict != baseline[name]["verdict"]:
                failures.append(
                    f"{name}: warm-cache verdict {res.verdict!r} != "
                    f"baseline {baseline[name]['verdict']!r}"
                )
            if res.verdict == "unknown":
                failures.append(f"{name}: warm-cache verdict is unknown")
            if not cache_note.get("hit"):
                failures.append(f"{name}: warm-cache run missed the cache")
        if warm.stats.hits < len(queries):
            failures.append(
                f"warm cache: {warm.stats.hits} hit(s) for "
                f"{len(queries)} queries"
            )

    if failures:
        print("\nPLAN EQUIVALENCE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("plan equivalence: OK "
          f"({len(queries)} queries, cold == baseline, warm all hits)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
