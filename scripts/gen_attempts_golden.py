"""Regenerate the golden attempts-schema snapshots for the T1.x queries.

The golden file pins ``details["attempts"]`` / ``details["decided_by"]``
for a fast subset of the Table 1 case-study queries, normalized by
dropping only the wall-clock ``elapsed`` field.  Every other attempt
field (rung, engine, limits, outcome, found, note) is deterministic for
these configurations — each query runs with ``mso_deadline_s=None`` so
no limit in the schema depends on wall-clock time — which is what lets
the refactor-safety test require byte-identical schemas.

Run from the repo root::

    PYTHONPATH=src python scripts/gen_attempts_golden.py

and commit ``tests/golden/attempts_schema.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.casestudies import cycletree, sizecount, treemutation  # noqa: E402
from repro.core.api import check_data_race, check_equivalence  # noqa: E402

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "tests" / "golden"


def golden_queries():
    """name -> zero-argument callable producing a VerificationResult.

    Deterministic-schema configurations only: ``mso_deadline_s=None``
    keeps every recorded limit wall-clock independent, and the budgets
    are machine-independent state counts.
    """
    return {
        "t1.2-auto": lambda: check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_invalid(),
            sizecount.invalid_fusion_correspondence(),
            mso_deadline_s=None,
            replay=False,
        ),
        "t1.3-auto": lambda: check_data_race(
            sizecount.parallel_program(), mso_deadline_s=None, replay=False
        ),
        "t1.3-mso": lambda: check_data_race(
            sizecount.parallel_program(),
            engine="mso",
            mso_deadline_s=None,
            replay=False,
        ),
        "t1.4-auto": lambda: check_equivalence(
            treemutation.original_program(),
            treemutation.fused_program(),
            treemutation.fusion_correspondence(),
            mso_deadline_s=None,
            replay=False,
        ),
        "t1.3-bounded2": lambda: check_data_race(
            sizecount.parallel_program(),
            engine="bounded",
            max_internal=2,
            replay=False,
        ),
        "t1.7-bounded2": lambda: check_data_race(
            cycletree.parallel_program(),
            engine="bounded",
            max_internal=2,
            replay=False,
        ),
        "t1.1-bounded3": lambda: check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
            engine="bounded",
            max_internal=3,
            replay=False,
        ),
    }


def normalized_attempts(attempts):
    """The schema projection: every field except wall-clock elapsed."""
    return [{k: v for k, v in a.items() if k != "elapsed"} for a in attempts]


def snapshot(res):
    return {
        "query": res.query,
        "verdict": res.verdict,
        "engine": res.engine,
        "decided_by": res.details.get("decided_by"),
        "attempts": normalized_attempts(res.details.get("attempts", [])),
    }


def main() -> int:
    out = {}
    for name, runner in golden_queries().items():
        res = runner()
        out[name] = snapshot(res)
        print(f"{name}: {res.verdict} decided_by={out[name]['decided_by']}")
    GOLDEN_PATH.mkdir(parents=True, exist_ok=True)
    path = GOLDEN_PATH / "attempts_schema.json"
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
