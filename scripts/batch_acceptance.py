#!/usr/bin/env python
"""Batch-isolation acceptance: crash a worker, kill the driver, resume.

The end-to-end property DESIGN.md §9 promises, checked on real
processes:

1. **Golden run** — an uninterrupted ``repro batch`` over a small
   manifest records its deterministic ``results.json``.
2. **Hostile run** — the same manifest in a fresh run directory, with
   ``REPRO_FAULT=worker-abort`` making the first symbolic worker die by
   SIGSEGV (one-shot, so the supervisor's retry recovers), and the
   *driver process itself* killed with ``SIGKILL`` as soon as the first
   verdict reaches the journal.
3. **Resume** — ``repro batch --resume`` on the mangled run directory
   must finish the batch recomputing only unjournaled verdicts, and its
   ``results.json`` must be byte-identical to the golden run's.

Exits 0 when the property holds; prints the divergence and exits 1
otherwise.  Run from the repository root::

    PYTHONPATH=src python scripts/batch_acceptance.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

RACY = """
A(n) { if (n == nil) { return 0 } else { n.v = 1; a = A(n.l); b = A(n.r); return a + b } }
Main(n) { { x = A(n) || y = A(n) }; return x }
"""

RACEFREE = """
F(n) { if (n == nil) { return 0 } else { a = F(n.l); b = F(n.r); return a + b + n.v } }
Main(n) { if (n == nil) { return 0 } else { { x = F(n.l) || y = F(n.r) }; return x + y } }
"""


def write_manifest(path: Path) -> None:
    # Every task is symbolic-capable ("auto"), so the injected
    # worker-abort can hit any of them; the trailing fuzz-case keeps the
    # driver busy long enough to be killed mid-run deterministically.
    path.write_text(json.dumps({
        "defaults": {
            "options": {"engine": "auto", "max_internal": 2},
            "limits": {"wall_s": 120.0},
        },
        "tasks": [
            {"name": "racy", "kind": "check-race", "source": RACY},
            {"name": "clean", "kind": "check-race", "source": RACEFREE},
            {"name": "oracle-racy", "kind": "fuzz-case",
             "case": {"kind": "race", "source": RACY, "max_internal": 2,
                      "name": "oracle-racy"}},
            {"name": "oracle-clean", "kind": "fuzz-case",
             "case": {"kind": "race", "source": RACEFREE, "max_internal": 3,
                      "name": "oracle-clean"}},
        ],
    }, indent=1))


def batch_cmd(manifest: Path, *extra: str) -> list:
    return [sys.executable, "-m", "repro.cli", "batch", str(manifest),
            "--jobs", "1", *extra]


def base_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_FAULT", None)
    env.pop("REPRO_FAULT_ONCE", None)
    return env


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    args = ap.parse_args()
    work = Path(args.workdir or tempfile.mkdtemp(prefix="batch-acceptance-"))
    work.mkdir(parents=True, exist_ok=True)
    manifest = work / "manifest.json"
    write_manifest(manifest)

    # -- 1. golden, uninterrupted run ----------------------------------
    golden_dir = work / "golden"
    proc = subprocess.run(
        batch_cmd(manifest, "--run-dir", str(golden_dir), "--quiet"),
        env=base_env(), capture_output=True, text=True,
    )
    if proc.returncode != 1:  # the racy tasks are violations
        fail(f"golden run exited {proc.returncode}:\n{proc.stderr}")
    golden = (golden_dir / "results.json").read_bytes()
    print(f"golden run: exit {proc.returncode}, "
          f"{len(json.loads(golden))} verdicts")

    # -- 2. crash-injected run, driver SIGKILLed mid-batch -------------
    hostile_dir = work / "hostile"
    env = base_env()
    env["REPRO_FAULT"] = "worker-abort:1"
    env["REPRO_FAULT_ONCE"] = str(work / "crash-sentinel")
    driver = subprocess.Popen(
        batch_cmd(manifest, "--run-dir", str(hostile_dir)),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal = hostile_dir / "journal.jsonl"
    deadline = time.monotonic() + 120.0
    killed = False
    while time.monotonic() < deadline:
        if driver.poll() is not None:
            break  # finished before we could kill it (machine too fast)
        if journal.exists() and journal.read_text().count('"verdict"') >= 1:
            driver.send_signal(signal.SIGKILL)
            driver.wait()
            killed = True
            break
        time.sleep(0.02)
    else:
        driver.kill()
        driver.wait()
        fail("driver neither journaled a verdict nor finished in 120s")
    if not (work / "crash-sentinel").exists():
        fail("injected worker crash never fired (sentinel missing)")
    if not killed:
        print("note: driver finished before the kill; resume still checked")
    else:
        journaled = journal.read_text().count('"event": "verdict"') or \
            sum(1 for line in journal.read_text().splitlines()
                if '"verdict"' in line)
        print(f"driver SIGKILLed after {journaled} journaled verdict(s)")
    if killed and (hostile_dir / "results.json").exists():
        fail("killed driver left a results.json behind")

    # -- 3. resume must complete and match the golden run byte-for-byte
    proc = subprocess.run(
        batch_cmd(manifest, "--resume", str(hostile_dir)),
        env=base_env(), capture_output=True, text=True,
    )
    if proc.returncode != 1:
        fail(f"resume exited {proc.returncode}:\n{proc.stderr}")
    if "already journaled" not in proc.stderr:
        fail(f"resume did not report journaled verdicts:\n{proc.stderr}")
    resumed = (hostile_dir / "results.json").read_bytes()
    if resumed != golden:
        fail(
            "results diverge after crash+kill+resume\n"
            f"--- golden ---\n{golden.decode()}\n"
            f"--- resumed ---\n{resumed.decode()}"
        )
    print("resume: results.json byte-identical to the uninterrupted run")
    print("OK: crash-isolated batch survives worker SIGSEGV and driver "
          "SIGKILL")


if __name__ == "__main__":
    main()
