#!/usr/bin/env python
"""Daemon chaos acceptance: overload, ``kill -9``, restart, drain.

The end-to-end properties DESIGN.md §11 promises, checked on a real
daemon process:

1. **Golden pass** — a daemon serves a mixed multi-client workload;
   every verdict is recorded (these are the reference verdicts).
2. **Backpressure** — with per-client quotas armed, a saturating client
   is rejected with the typed ``ServiceOverloaded`` (carrying a
   retry-after hint) while another client's queries keep completing.
3. **kill -9 mid-load** — the daemon is SIGKILLed as soon as the first
   verdict reaches its journal, under concurrent multi-client load.  A
   restart on the same run directory must replay the journal, byte-
   verify the shared cache (zero quarantined rows), and answer every
   resubmitted query with the golden verdict — journaled work from a
   cache hit, nothing lost, nothing duplicated (journal ``verdict``
   events stay unique per cache key across both lifetimes).
4. **Graceful drain** — SIGTERM makes the daemon finish in-flight work
   and exit 0.

Exits 0 when every property holds; prints the divergence and exits 1
otherwise.  Run from the repository root::

    PYTHONPATH=src python scripts/daemon_chaos.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import DaemonClient, DaemonError  # noqa: E402
from repro.service.scheduler import ServiceOverloaded  # noqa: E402
from repro.service.worker import task_for_race  # noqa: E402

RACY = """
F(n) { if (n == nil) { return 0 } else { n.v = 1; a = F(n.l); b = F(n.r); return a + b } }
Main(n) { { x = F(n) || y = F(n) }; return x }
"""

RACEFREE = """
F(n) { if (n == nil) { return 0 } else { a = F(n.l); b = F(n.r); return a + b + n.v } }
Main(n) { { x = F(n.l) || y = F(n.r) }; return x + y }
"""

BOUNDED = {"engine": "bounded", "max_internal": 2}


def workload():
    """A deterministic mixed workload with distinct content keys."""
    tasks = [task_for_race(RACY, options=BOUNDED, name="racy")]
    for i in range(7):
        src = RACEFREE.replace("a + b + n.v", f"a + b + n.v + {i}")
        tasks.append(task_for_race(src, options=BOUNDED, name=f"clean-{i}"))
    return tasks


def base_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_FAULT", None)
    env.pop("REPRO_FAULT_ONCE", None)
    return env


def serve_cmd(run_dir: Path, *extra: str) -> list:
    return [sys.executable, "-m", "repro.cli", "serve", str(run_dir),
            "--jobs", "2", "--isolation", "inline", "--quiet", *extra]


def start_daemon(run_dir: Path, *extra: str) -> subprocess.Popen:
    socket_path = run_dir / "daemon.sock"
    if socket_path.exists():  # stale socket from a SIGKILLed daemon
        socket_path.unlink()
    proc = subprocess.Popen(
        serve_cmd(run_dir, *extra), env=base_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while not socket_path.exists():
        if proc.poll() is not None:
            fail(f"daemon died on startup (exit {proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            fail("daemon did not come up in 30s")
        time.sleep(0.02)
    return proc


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def journal_verdict_ckeys(run_dir: Path) -> list:
    out = []
    path = run_dir / "daemon-journal.jsonl"
    if not path.exists():
        return out
    for line in path.read_text().splitlines():
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn tail from the SIGKILL — tolerated by design
        if rec.get("event") == "verdict" and rec.get("ckey"):
            out.append(rec["ckey"])
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    args = ap.parse_args()
    work = Path(args.workdir or tempfile.mkdtemp(prefix="daemon-chaos-"))
    work.mkdir(parents=True, exist_ok=True)
    tasks = workload()

    # -- 1. golden pass: reference verdicts ----------------------------
    golden_dir = work / "golden"
    daemon = start_daemon(golden_dir)
    golden = {}
    with DaemonClient(golden_dir / "daemon.sock", client_id="golden") as c:
        for t in tasks:
            golden[t.name] = c.submit_task(t)["value"]["verdict"]
        c.shutdown()
    if daemon.wait(timeout=60) != 0:
        fail(f"golden daemon exited {daemon.returncode}, want 0")
    if golden["racy"] != "race" or golden["clean-0"] != "race-free":
        fail(f"golden verdicts look wrong: {golden}")
    print(f"golden pass: {len(golden)} verdicts, daemon exited 0")

    # -- 2. backpressure: saturator rejected, victim completes ---------
    quota_dir = work / "quota"
    daemon = start_daemon(quota_dir, "--client-rate", "0.001",
                          "--client-burst", "2")
    rejected = None
    with DaemonClient(quota_dir / "daemon.sock", client_id="flood") as flood:
        flood.submit_task(tasks[1])
        flood.submit_task(tasks[2])
        try:
            flood.submit_task(tasks[3])
        except ServiceOverloaded as e:
            rejected = e
    if rejected is None:
        fail("saturating client was never rejected")
    if rejected.reason != "quota" or rejected.retry_after_s <= 0:
        fail(f"bad rejection: reason={rejected.reason} "
             f"retry_after={rejected.retry_after_s}")
    with DaemonClient(quota_dir / "daemon.sock", client_id="victim") as v:
        verdict = v.submit_task(tasks[4])["value"]["verdict"]
        if verdict != golden[tasks[4].name]:
            fail(f"victim got {verdict!r} during overload")
        v.shutdown()
    if daemon.wait(timeout=60) != 0:
        fail(f"quota daemon exited {daemon.returncode}, want 0")
    print(f"backpressure: saturator rejected (ServiceOverloaded/quota, "
          f"retry in {rejected.retry_after_s:.2f}s); victim completed")

    # -- 3. kill -9 mid-load, restart, replay --------------------------
    chaos_dir = work / "chaos"
    daemon = start_daemon(chaos_dir)
    results, errors = {}, []

    def client_load(cid, my_tasks):
        try:
            with DaemonClient(chaos_dir / "daemon.sock", client_id=cid,
                              timeout_s=120.0) as c:
                for t in my_tasks:
                    results[t.name] = c.submit_task(t)["value"]["verdict"]
        except DaemonError as e:
            errors.append(str(e))  # expected: the daemon dies under us

    threads = [
        threading.Thread(target=client_load, args=(f"c{i}", tasks[i::2]))
        for i in range(2)
    ]
    for th in threads:
        th.start()
    journal = chaos_dir / "daemon-journal.jsonl"
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if journal_verdict_ckeys(chaos_dir):
            daemon.send_signal(signal.SIGKILL)
            daemon.wait()
            break
        time.sleep(0.005)
    else:
        daemon.kill()
        fail("daemon never journaled a verdict under load")
    for th in threads:
        th.join(timeout=30)
    pre_kill = journal_verdict_ckeys(chaos_dir)
    print(f"SIGKILL after {len(pre_kill)} journaled verdict(s); "
          f"{len(errors)} client connection(s) torn (expected)")

    daemon = start_daemon(chaos_dir)  # same run dir: journal replay
    with DaemonClient(chaos_dir / "daemon.sock", client_id="replay") as c:
        st = c.status()
        if st["journal"]["verify_quarantined"] != 0:
            fail(f"shared cache corrupt after kill -9: {st['journal']}")
        if st["journal"]["replayed"] != len(set(pre_kill)):
            fail(f"replayed {st['journal']['replayed']} != journaled "
                 f"{len(set(pre_kill))}")
        hits_before = st["cache_hits"]
        resubmitted = {}
        for t in tasks:
            r = c.submit_task(t)
            resubmitted[t.name] = r["value"]["verdict"]
        st = c.status()
        c.shutdown()
    if resubmitted != golden:
        fail(f"verdicts diverge after kill+restart:\n"
             f"golden:      {golden}\nresubmitted: {resubmitted}")
    if st["cache_hits"] - hits_before < len(pre_kill):
        fail("journaled verdicts were not served from the shared cache")
    all_ckeys = journal_verdict_ckeys(chaos_dir)
    if len(all_ckeys) != len(set(all_ckeys)):
        dupes = sorted(k for k in set(all_ckeys) if all_ckeys.count(k) > 1)
        fail(f"duplicated journal verdicts for cache keys: {dupes}")
    if daemon.wait(timeout=60) != 0:
        fail(f"restarted daemon exited {daemon.returncode}, want 0")
    print(f"restart: {len(set(pre_kill))} verdict(s) replayed and "
          f"byte-verified, all {len(tasks)} resubmissions match golden, "
          "no duplicate journal entries")

    # -- 4. SIGTERM drains and exits 0 ---------------------------------
    term_dir = work / "term"
    daemon = start_daemon(term_dir)
    with DaemonClient(term_dir / "daemon.sock", client_id="t") as c:
        c.submit_task(tasks[0])
    daemon.send_signal(signal.SIGTERM)
    if daemon.wait(timeout=60) != 0:
        fail(f"SIGTERM drain exited {daemon.returncode}, want 0")
    print("SIGTERM: drained and exited 0")

    print("OK: daemon survives overload, kill -9 + journal replay, and "
          "drains cleanly")


if __name__ == "__main__":
    main()
